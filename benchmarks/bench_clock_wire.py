"""E17 — clock wire formats: piggybacked clock bytes scale sublinearly.

The piggyback transport (E16) made clock traffic free in *messages* but not
in *bytes*: a full vector clock costs ``world_size × 8`` bytes on every data
message, so matrix-clock detection stops scaling past debugging-size worlds.
The wire-format layer fixes that: ``clock_wire="delta"``/``"truncated"``
send only the components that changed since the channel's last clock (plus
periodic resyncs), which for neighbor-local communication is O(neighbors)
per message, not O(world).

This benchmark sweeps world sizes 4 → 32 over a ring of posted puts (each
rank repeatedly writes its right neighbor's inbox — per-channel clocks
change in a constant number of components between sends) and asserts the
scaling law the acceptance criteria name:

* ``full`` clock bytes per message are exactly ``world_size × 8`` — linear;
* ``delta`` and ``truncated`` grow **sublinearly** (the 4→32 growth factor
  is at most half of full's 8×), with delta at most truncated's cost;
* verdicts and message counts are identical across formats (compression is
  accounting, never semantics).

A second experiment pins the completion-coalescing half: CQ moderation
delivers one CQE per drain burst, shrinking completion events and the
batched-clock bytes charged for them, at identical verdicts and numerics.

Writes ``BENCH_clock_wire.json``; CI's perf gate (``tools/perf_gate.py``)
compares it against the committed baseline so the scaling numbers can only
regress loudly.
"""

import json
import os

from conftest import record

from repro.runtime.runtime import DSMRuntime, RuntimeConfig

#: Where the per-push perf artifact lands (CI uploads and gates it).
BENCH_JSON = os.environ.get("REPRO_BENCH_WIRE_JSON", "BENCH_clock_wire.json")

WORLD_SIZES = (4, 8, 16, 32)
WIRE_FORMATS = ("full", "delta", "truncated")
ROUNDS = 10


def _ring_run(world, wire, cq_moderation=False, seed=0):
    """Each rank streams posted puts into its right neighbor's inbox cell."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=world,
            seed=seed,
            clock_transport="piggyback",
            clock_wire=wire,
            cq_moderation=cq_moderation,
        )
    )
    runtime.declare_array("inbox", world, initial=0)

    def program(api):
        right = (api.rank + 1) % api.world_size
        for round_index in range(ROUNDS):
            request = api.iput("inbox", api.rank * 1000 + round_index, index=right)
            yield from api.wait(request)
            yield from api.compute(1.0)

    runtime.set_spmd_program(program)
    return runtime.run()


def _burst_run(cq_moderation, wire="delta", seed=0):
    """One rank posts a burst, computes through it, retires it in one go —
    the drain shape CQ moderation coalesces."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=3,
            seed=seed,
            clock_transport="piggyback",
            clock_wire=wire,
            cq_moderation=cq_moderation,
        )
    )
    runtime.declare_array("cells", 8, owner=1, initial=0)

    def poster(api):
        for index in range(8):
            api.iput("cells", index, index=index)
        yield from api.compute(100.0)
        yield from api.wait_all()

    def idle(api):
        yield from api.compute(0.0)

    runtime.set_program(0, poster)
    runtime.set_program(1, idle)
    runtime.set_program(2, idle)
    return runtime.run()


def _clock_bytes_per_message(result):
    stats = result.clock_transport_stats
    return stats["piggybacked_bytes"] / max(1, stats["piggybacked_messages"])


def test_delta_and_truncated_scale_sublinearly_in_world_size(benchmark):
    sweep = benchmark(
        lambda: {
            wire: {world: _ring_run(world, wire) for world in WORLD_SIZES}
            for wire in WIRE_FORMATS
        }
    )
    per_message = {
        wire: {
            world: _clock_bytes_per_message(sweep[wire][world])
            for world in WORLD_SIZES
        }
        for wire in WIRE_FORMATS
    }
    # Compression is accounting, never semantics: identical verdicts (none —
    # single writer per inbox cell) and identical message counts per world.
    for world in WORLD_SIZES:
        baseline = sweep["full"][world]
        assert baseline.race_count == 0
        for wire in ("delta", "truncated"):
            assert sweep[wire][world].race_count == 0
            assert (
                sweep[wire][world].fabric_stats.total_messages
                == baseline.fabric_stats.total_messages
            )
    # Full is exactly linear: the whole vector on every rider.
    for world in WORLD_SIZES:
        assert per_message["full"][world] == world * 8
    smallest, largest = WORLD_SIZES[0], WORLD_SIZES[-1]
    linear_growth = largest / smallest  # 8x for 4 -> 32
    assert per_message["full"][largest] / per_message["full"][smallest] == linear_growth
    # Delta/truncated grow sublinearly: at most half the linear factor over
    # the same sweep (ring traffic changes O(1) components per message).
    for wire in ("delta", "truncated"):
        growth = per_message[wire][largest] / per_message[wire][smallest]
        assert growth <= linear_growth / 2, (
            f"{wire}: clock bytes per message grew {growth:.2f}x from "
            f"{smallest} to {largest} ranks — not sublinear"
        )
        # And strictly cheaper than full at every world size past the smallest.
        for world in WORLD_SIZES[1:]:
            assert per_message[wire][world] < per_message["full"][world]
    # Delta entries (rank + increment) are at most truncated's (rank + value).
    for world in WORLD_SIZES:
        assert per_message["delta"][world] <= per_message["truncated"][world]
    record(
        benchmark,
        experiment="E17 / clock wire scaling",
        **{
            f"{wire}_bytes_per_msg_w{world}": round(per_message[wire][world], 2)
            for wire in WIRE_FORMATS
            for world in WORLD_SIZES
        },
    )
    _write_artifact(sweep, per_message)


def test_cq_moderation_coalesces_completion_traffic(benchmark):
    results = benchmark(
        lambda: {moderated: _burst_run(moderated) for moderated in (False, True)}
    )
    off, on = results[False], results[True]
    # Verdict- and value-identical...
    assert off.race_count == on.race_count == 0
    assert off.final_shared_values == on.final_shared_values
    stats_off, stats_on = off.clock_transport_stats, on.clock_transport_stats
    # ...with one CQE per drain burst instead of one per completion...
    assert stats_on["completion_events"] < stats_off["completion_events"]
    assert stats_on["completions_coalesced"] > 0
    # ...so the batched retirement clock is charged once per burst.
    assert stats_on["completion_clock_bytes"] < stats_off["completion_clock_bytes"]
    record(
        benchmark,
        experiment="E17 / CQ moderation",
        events_unmoderated=stats_off["completion_events"],
        events_moderated=stats_on["completion_events"],
        completion_clock_bytes_unmoderated=stats_off["completion_clock_bytes"],
        completion_clock_bytes_moderated=stats_on["completion_clock_bytes"],
    )
    _write_moderation(stats_off, stats_on)


_ARTIFACT = {
    "format": "repro-bench-clock-wire",
    "version": 1,
    "world_sizes": list(WORLD_SIZES),
    "wire_formats": list(WIRE_FORMATS),
}


def _write_artifact(sweep, per_message) -> None:
    _ARTIFACT["clock_bytes_per_message"] = {
        wire: {str(world): round(per_message[wire][world], 3) for world in WORLD_SIZES}
        for wire in WIRE_FORMATS
    }
    _ARTIFACT["piggybacked_bytes"] = {
        wire: {
            str(world): sweep[wire][world].clock_transport_stats["piggybacked_bytes"]
            for world in WORLD_SIZES
        }
        for wire in WIRE_FORMATS
    }
    _ARTIFACT["total_messages"] = {
        wire: {
            str(world): sweep[wire][world].fabric_stats.total_messages
            for world in WORLD_SIZES
        }
        for wire in WIRE_FORMATS
    }
    _flush()


def _write_moderation(stats_off, stats_on) -> None:
    _ARTIFACT["cq_moderation"] = {
        "completion_events_unmoderated": stats_off["completion_events"],
        "completion_events_moderated": stats_on["completion_events"],
        "completion_clock_bytes_unmoderated": stats_off["completion_clock_bytes"],
        "completion_clock_bytes_moderated": stats_on["completion_clock_bytes"],
        "completions_coalesced": stats_on["completions_coalesced"],
    }
    _flush()


def _flush() -> None:
    with open(BENCH_JSON, "w") as handle:
        json.dump(_ARTIFACT, handle, indent=2, sort_keys=True)
