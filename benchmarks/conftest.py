"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or analytical claims
(see DESIGN.md, Section 2).  Conventions:

* each benchmark *asserts* the qualitative shape the paper reports (who
  races, who does not, which quantity grows with what), so ``pytest
  benchmarks/ --benchmark-only`` doubles as a reproduction check;
* quantitative details (message counts, clock sizes, race counts) are
  attached to ``benchmark.extra_info`` so they appear in
  ``--benchmark-json`` output and can be copied into EXPERIMENTS.md.
"""

import pytest


def record(benchmark, **info):
    """Attach reproduction metrics to the benchmark record."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
