"""E5 — Figure 5a: two concurrent puts into the same datum are a race.

The paper's space-time diagram ends with the clock comparison ``110 × 001``;
the benchmark asserts that exactly one race is signalled, that it involves the
two writers (P0 and P2) on datum ``a``, and that the two clocks recorded in
the race report are indeed incomparable.
"""

from conftest import record

from repro.core.comparator import concurrent
from repro.workloads.figures import figure5a_concurrent_puts


def run_scenario():
    runtime = figure5a_concurrent_puts()
    result = runtime.run()
    return runtime, result


def test_fig5a_race_detected_between_the_two_puts(benchmark):
    _runtime, result = benchmark(run_scenario)

    assert result.race_count == 1, "Figure 5a: the second put must be flagged"
    race = result.race_records()[0]
    assert race.symbol == "a"
    assert {race.current_rank, race.previous_rank} == {0, 2}
    assert concurrent(list(race.current_clock), list(race.previous_clock)), (
        "the clocks attached to the conflicting writes must be incomparable"
    )

    record(
        benchmark,
        experiment="E5 / Figure 5a",
        races=result.race_count,
        current_clock=str(race.current_clock),
        previous_clock=str(race.previous_clock),
    )


def test_fig5a_every_additional_unsynchronized_writer_is_flagged(benchmark):
    """Shape check: with k unsynchronized writers, k-1 race signals appear."""
    from repro.runtime.runtime import DSMRuntime, RuntimeConfig

    writers = 6

    def run():
        runtime = DSMRuntime(RuntimeConfig(world_size=writers + 1, latency="constant"))
        runtime.declare_scalar("a", owner=writers, initial=0)

        def writer(api):
            yield from api.compute(0.1 * api.rank)
            yield from api.put("a", api.rank)

        def idle(api):
            yield from api.compute(0.0)

        for rank in range(writers):
            runtime.set_program(rank, writer)
        runtime.set_program(writers, idle)
        return runtime.run()

    result = benchmark(run)
    assert result.race_count == writers - 1
    record(benchmark, experiment="E5 scaling", writers=writers, races=result.race_count)
