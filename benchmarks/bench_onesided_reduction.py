"""E12 — Section V-B: non-collective, one-sided global reduction.

The paper's future-work operation: one process reduces data held by all the
others purely with remote gets.  The benchmark checks correctness of the
synchronized variant (exact sum, no race, no participation by the owners
beyond their own deposit) and the diagnostic value of the unsynchronized
variant (the detector flags the reads that race with late contributions).
"""

from conftest import record

from repro.net.message import MessageKind
from repro.workloads.reduction import OneSidedReductionWorkload


def run_synchronized(world_size=6):
    workload = OneSidedReductionWorkload(world_size=world_size, synchronize=True)
    outcome = workload.run(seed=0)
    return workload, outcome


def test_onesided_reduction_is_exact_and_race_free(benchmark):
    workload, outcome = benchmark(run_synchronized)
    result = outcome.run

    assert result.per_rank_private[0]["total"] == workload.expected_sum()
    assert result.shared_value("total") == workload.expected_sum()
    assert result.race_count == 0

    # One-sided: the reduction itself is made only of get request/reply pairs
    # issued by the reducer; the owners never send anything on their own.
    runtime = outcome.runtime
    get_requests = runtime.fabric.message_count(MessageKind.GET_REQUEST)
    assert get_requests >= workload.world_size - 1

    record(
        benchmark,
        experiment="E12 / Section V-B",
        world_size=workload.world_size,
        reduced_total=result.per_rank_private[0]["total"],
        expected_total=workload.expected_sum(),
        get_requests=get_requests,
        races=result.race_count,
    )


def test_unsynchronized_reduction_is_flagged(benchmark):
    def run():
        workload = OneSidedReductionWorkload(world_size=6, synchronize=False)
        return workload.run(seed=0).run

    result = benchmark(run)
    assert result.race_count > 0
    assert "contrib" in {race.symbol for race in result.race_records()}
    record(
        benchmark,
        experiment="E12 unsynchronized variant",
        races=result.race_count,
    )


def test_reduction_message_count_scales_linearly(benchmark):
    """Shape check: the reducer issues O(n) gets, i.e. ~2n data messages."""

    def measure():
        counts = []
        for world_size in (4, 8, 12):
            workload = OneSidedReductionWorkload(world_size=world_size, synchronize=True)
            outcome = workload.run(seed=0)
            counts.append(
                (world_size, outcome.runtime.fabric.message_count(MessageKind.GET_REQUEST))
            )
        return counts

    counts = benchmark(measure)
    requests = [c for _n, c in counts]
    assert requests == sorted(requests)
    # Roughly linear: the largest configuration issues about 3x the smallest.
    assert requests[-1] >= 2 * requests[0]
    record(benchmark, experiment="E12 scaling", counts=counts)
