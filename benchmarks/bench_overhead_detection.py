"""E11 — Section V-A: the cost of enabling detection on a running program.

The paper argues the overhead (extra clock messages, extra bytes, clock
storage) is acceptable because detection is a debugging technique used at
small scale.  The benchmark quantifies it on the barrier-synchronized stencil:
the same program is run with detection off (baseline) and on (instrumented),
and the comparison must show (a) identical application results, (b) identical
data-message counts, (c) a bounded number of extra control messages per remote
access, and (d) clock storage matching the analytical model.
"""

from conftest import record

from repro.analysis.overhead import compare_runs
from repro.core.detector import DetectorConfig
from repro.runtime.runtime import RuntimeConfig
from repro.workloads.stencil import StencilWorkload


def run_pair(world_size=6, iterations=3):
    def run(enabled):
        workload = StencilWorkload(
            world_size=world_size, cells_per_rank=6, iterations=iterations,
            use_barriers=True,
            config=RuntimeConfig(detector=DetectorConfig(enabled=enabled)),
        )
        return workload.run(seed=0).run

    baseline = run(False)
    instrumented = run(True)
    return baseline, instrumented


def test_detection_overhead_on_synchronized_stencil(benchmark):
    baseline, instrumented = benchmark(run_pair)
    comparison = compare_runs(baseline, instrumented)

    # (a) Detection does not change the computation.
    assert baseline.final_shared_values == instrumented.final_shared_values
    # (b) The application traffic is untouched.
    assert baseline.fabric_stats.data_messages == instrumented.fabric_stats.data_messages
    # (c) Bounded per-access control overhead: one clock round trip per remote
    #     access in this configuration (2 messages), never more.
    assert 0 < comparison.extra_messages_per_access <= 2.0
    # (d) Extra bytes and storage exist and are attributable to clocks.
    assert comparison.detection_bytes > 0
    assert comparison.clock_storage_entries > 0
    # The instrumented run is slower in simulated time, but by a modest factor.
    assert 1.0 <= comparison.time_overhead_ratio < 3.0

    record(
        benchmark,
        experiment="E11 / Section V-A",
        **comparison.as_dict(),
    )


def test_piggybacked_clocks_remove_message_overhead(benchmark):
    """An optimized library can piggyback clocks on data messages (no extra messages)."""
    from repro.net.nic import NICConfig

    def run():
        workload = StencilWorkload(
            world_size=4, cells_per_rank=6, iterations=2, use_barriers=True,
            config=RuntimeConfig(nic=NICConfig(charge_detection_messages=False)),
        )
        return workload.run(seed=0).run

    result = benchmark(run)
    assert result.fabric_stats.detection_messages == 0
    assert result.race_count == 0
    record(
        benchmark,
        experiment="E11 piggybacked clocks",
        detection_messages=result.fabric_stats.detection_messages,
        data_bytes=result.fabric_stats.data_bytes,
    )
