"""E11 — Section V-A: the cost of enabling detection on a running program.

The paper argues the overhead (extra clock messages, extra bytes, clock
storage) is acceptable because detection is a debugging technique used at
small scale.  The benchmark quantifies it on the barrier-synchronized stencil:
the same program is run with detection off (baseline) and on (instrumented),
and the comparison must show (a) identical application results, (b) identical
data-message counts, (c) a bounded number of extra control messages per remote
access, and (d) clock storage matching the analytical model.

The detection profiler refines (c)/(d) into a per-check-type breakdown —
read/write/rmw × live/carried, each with its clock compare and join counts —
written to ``BENCH_overhead_detection.json`` and gated by
``tools/perf_gate.py`` so the detection hot path cannot silently grow more
expensive per check.
"""

import json
import os

from conftest import record

from repro.analysis.overhead import compare_runs
from repro.core.detector import DetectorConfig
from repro.obs.profiler import CHECK_TYPES
from repro.runtime.runtime import RuntimeConfig
from repro.workloads.stencil import StencilWorkload

#: Where the per-push perf artifact lands (CI uploads it).
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_overhead_detection.json")


def run_pair(world_size=6, iterations=3):
    def run(enabled):
        workload = StencilWorkload(
            world_size=world_size, cells_per_rank=6, iterations=iterations,
            use_barriers=True,
            config=RuntimeConfig(detector=DetectorConfig(enabled=enabled)),
        )
        return workload.run(seed=0).run

    baseline = run(False)
    instrumented = run(True)
    return baseline, instrumented


def test_detection_overhead_on_synchronized_stencil(benchmark):
    baseline, instrumented = benchmark(run_pair)
    comparison = compare_runs(baseline, instrumented)

    # (a) Detection does not change the computation.
    assert baseline.final_shared_values == instrumented.final_shared_values
    # (b) The application traffic is untouched.
    assert baseline.fabric_stats.data_messages == instrumented.fabric_stats.data_messages
    # (c) Bounded per-access control overhead: one clock round trip per remote
    #     access in this configuration (2 messages), never more.
    assert 0 < comparison.extra_messages_per_access <= 2.0
    # (d) Extra bytes and storage exist and are attributable to clocks.
    assert comparison.detection_bytes > 0
    assert comparison.clock_storage_entries > 0
    # The instrumented run is slower in simulated time, but by a modest factor.
    assert 1.0 <= comparison.time_overhead_ratio < 3.0

    record(
        benchmark,
        experiment="E11 / Section V-A",
        **comparison.as_dict(),
    )


def _profile_totals(profile):
    return {
        key: sum(entry[key] for entry in profile.values())
        for key in ("checks", "compares", "joins", "epoch_hits")
    }


def test_per_check_type_cost_breakdown(benchmark):
    """Profile the detection hot path per check type and write the gate artifact.

    Two workloads cover the whole check-type matrix: the blocking stencil
    drives *live* checks (the caller's own clock ticks at the access) while
    the verbs stencil drives *carried* checks (posted operations travel with
    post-time clock snapshots).  The resulting compare/join counts are the
    costs the epoch fast path must shrink, so they are committed as a
    baseline and gated.

    The reported profiles come straight from the observability registry
    (``runtime.sim.obs.profiler``) — the same object ``RunResult.
    detection_profile`` snapshots — so the benchmark artifact and the run
    result can never disagree; the cross-check below pins that.
    """
    from repro.workloads.verbs_stencil import VerbsStencilWorkload

    def run():
        blocking = StencilWorkload(
            world_size=6, cells_per_rank=6, iterations=3, use_barriers=True
        ).run(seed=0)
        overlapped = VerbsStencilWorkload(
            world_size=6, cells_per_rank=6, iterations=3, use_barriers=True
        ).run(seed=0)
        return blocking, overlapped

    blocking, overlapped = benchmark(run)
    # Per-access-kind counts from the profiler registry, not recomputed here.
    profiles = {
        "stencil_blocking": blocking.runtime.sim.obs.profiler.snapshot(),
        "stencil_verbs": overlapped.runtime.sim.obs.profiler.snapshot(),
    }
    # ... and the registry is exactly what the run result snapshotted.
    assert profiles["stencil_blocking"] == blocking.run.detection_profile
    assert profiles["stencil_verbs"] == overlapped.run.detection_profile

    for name, profile in profiles.items():
        # Every check type is present, in canonical order, counts only (no
        # nondeterministic wall time in the default configuration).
        assert list(profile) == sorted(f"{k}_{p}" for k, p in CHECK_TYPES), name
        for entry in profile.values():
            assert set(entry) == {"checks", "compares", "joins", "epoch_hits"}, name
        # The profiler's check total is the detector's, exactly.
        runtime = (blocking if name == "stencil_blocking" else overlapped).runtime
        total_checks = sum(entry["checks"] for entry in profile.values())
        assert total_checks == runtime.detector.checks_performed, name

    # The blocking stencil only ever performs live checks; the verbs stencil
    # posts its halo puts, so its write checks are carried.
    assert profiles["stencil_blocking"]["write_live"]["checks"] > 0
    assert profiles["stencil_blocking"]["write_carried"]["checks"] == 0
    assert profiles["stencil_verbs"]["write_carried"]["checks"] > 0
    # Joins (clock merges) happen on every check path; compares only where a
    # previous access forced an ordering test.
    assert all(
        sum(entry["joins"] for entry in profile.values()) > 0
        for profile in profiles.values()
    )

    totals = {name: _profile_totals(profile) for name, profile in profiles.items()}
    _write_artifact("profiles", profiles)
    _write_artifact("totals", totals)
    record(
        benchmark,
        experiment="E11 per-check-type profile",
        **{
            f"{name}_{key}": value
            for name, total in totals.items()
            for key, value in total.items()
        },
    )


def test_epoch_fastpath_halves_compares_on_exclusive_access(benchmark):
    """The FastTrack-style payoff, pinned: the barrier-synchronized stencil
    is an exclusive-access workload (each halo cell has one writer and one
    ordered reader), so with epochs on nearly every check collapses to an
    O(1) probe.  The acceptance bar is a >= 2x reduction in full vector
    compares at byte-identical verdicts, checks and joins; the artifact
    section commits both modes' totals so the perf gate holds the ratio.
    """

    def run():
        def stencil(detector_epochs):
            return StencilWorkload(
                world_size=6, cells_per_rank=6, iterations=3, use_barriers=True,
                config=RuntimeConfig(detector_epochs=detector_epochs),
            ).run(seed=0)

        return stencil("on"), stencil("off")

    fast, slow = benchmark(run)

    # Exactness: the fast path changes no observable of the run.
    assert fast.run.race_count == slow.run.race_count == 0
    assert fast.run.final_shared_values == slow.run.final_shared_values
    assert fast.run.metrics == slow.run.metrics

    totals = {
        "epochs_on": _profile_totals(fast.run.detection_profile),
        "epochs_off": _profile_totals(slow.run.detection_profile),
    }
    assert totals["epochs_on"]["checks"] == totals["epochs_off"]["checks"]
    assert totals["epochs_on"]["joins"] == totals["epochs_off"]["joins"]
    assert totals["epochs_off"]["epoch_hits"] == 0
    assert totals["epochs_on"]["epoch_hits"] > 0
    # The acceptance bar: at least half the full vector compares are gone.
    assert totals["epochs_on"]["compares"] * 2 <= totals["epochs_off"]["compares"]
    assert totals["epochs_off"]["compares"] > 0

    _write_artifact("epoch_fastpath", totals)
    record(
        benchmark,
        experiment="E11 epoch fast path (exclusive-access stencil)",
        **{
            f"{mode}_{key}": value
            for mode, total in totals.items()
            for key, value in total.items()
        },
    )


def test_postmortem_replay_epoch_fastpath_on_large_trace(benchmark):
    """Re-tune the postmortem replay path on a large recorded trace.

    The wrapper/pre-compiler deployment route records accesses online and
    analyses them later; its detector inherits ``DetectorConfig.epochs``.
    This pins the fast path on the *offline* detector: replaying the largest
    stencil trace in the suite with epochs on must reproduce the online race
    verdict (none), match epochs-off verdicts and joins exactly, and at least
    halve the full vector compares — the same acceptance bar the online
    detector meets.  Replay totals join the gate artifact so postmortem
    analysis cost cannot silently regress.
    """
    from repro.trace.replay import TraceReplayer

    traced = StencilWorkload(
        world_size=6, cells_per_rank=10, iterations=5, use_barriers=True
    ).run(seed=0)
    recorder = traced.runtime.recorder
    accesses, syncs = recorder.accesses(), recorder.syncs()
    world_size = traced.runtime.config.world_size

    def replay_pair():
        def replay(epochs):
            return TraceReplayer(
                world_size, config=DetectorConfig(epochs=epochs)
            ).replay(accesses, syncs)

        return replay(True), replay(False)

    fast, slow = benchmark(replay_pair)

    # Offline replay reproduces the online verdict, with and without epochs.
    assert fast.race_count == slow.race_count == traced.run.race_count == 0
    assert fast.accesses_replayed == slow.accesses_replayed == len(accesses)
    assert fast.cells_touched == slow.cells_touched

    totals = {
        "epochs_on": _profile_totals(fast.detection_profile),
        "epochs_off": _profile_totals(slow.detection_profile),
    }
    # The fast path changes replay cost, never replay semantics.
    assert totals["epochs_on"]["checks"] == totals["epochs_off"]["checks"]
    assert totals["epochs_on"]["joins"] == totals["epochs_off"]["joins"]
    assert totals["epochs_off"]["epoch_hits"] == 0
    assert totals["epochs_on"]["epoch_hits"] > 0
    # Same acceptance bar as online: >= 2x fewer full vector compares.
    assert totals["epochs_on"]["compares"] * 2 <= totals["epochs_off"]["compares"]
    assert totals["epochs_off"]["compares"] > 0

    report = {
        "trace_accesses": len(accesses),
        "trace_syncs": len(syncs),
        **totals,
    }
    _write_artifact("postmortem_replay", report)
    record(
        benchmark,
        experiment="E11 postmortem replay epoch fast path (large trace)",
        trace_accesses=len(accesses),
        **{
            f"{mode}_{key}": value
            for mode, total in totals.items()
            for key, value in total.items()
        },
    )


def _write_artifact(section: str, report: dict) -> None:
    """Write one section of the gate artifact, preserving sections already
    written by other tests in this benchmark run."""
    payload = {
        "format": "repro-bench-overhead-detection",
        "version": 2,
        "check_types": [f"{k}_{p}" for k, p in CHECK_TYPES],
    }
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, encoding="utf-8") as handle:
            existing = json.load(handle)
        if existing.get("format") == payload["format"]:
            for key, value in existing.items():
                if key not in ("format", "version", "check_types"):
                    payload[key] = value
    payload[section] = report
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_piggybacked_clocks_remove_message_overhead(benchmark):
    """An optimized library can piggyback clocks on data messages (no extra messages)."""
    from repro.net.nic import NICConfig

    def run():
        workload = StencilWorkload(
            world_size=4, cells_per_rank=6, iterations=2, use_barriers=True,
            config=RuntimeConfig(nic=NICConfig(charge_detection_messages=False)),
        )
        return workload.run(seed=0).run

    result = benchmark(run)
    assert result.fabric_stats.detection_messages == 0
    assert result.race_count == 0
    record(
        benchmark,
        experiment="E11 piggybacked clocks",
        detection_messages=result.fabric_stats.detection_messages,
        data_bytes=result.fabric_stats.data_bytes,
    )
