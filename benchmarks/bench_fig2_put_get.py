"""E2 — Figure 2: ``put`` is one data message, ``get`` is two.

The paper's message decomposition is the basis of every overhead argument, so
the benchmark pins it down exactly: one PUT_DATA message per put, one
GET_REQUEST plus one GET_REPLY per get, regardless of how many control
messages (locks, clocks) the configuration adds around them.
"""

from conftest import record

from repro.net.message import MessageKind
from repro.workloads.figures import figure2_put_get


def test_fig2_put_one_message_get_two(benchmark):
    # Time the full scenario (build + run); assert on a fresh instance.
    benchmark(lambda: figure2_put_get().run())
    runtime = figure2_put_get()
    result = runtime.run()

    puts = runtime.fabric.message_count(MessageKind.PUT_DATA)
    get_requests = runtime.fabric.message_count(MessageKind.GET_REQUEST)
    get_replies = runtime.fabric.message_count(MessageKind.GET_REPLY)

    assert puts == 1, "Figure 2: a put must involve exactly one message"
    assert get_requests == 1 and get_replies == 1, "Figure 2: a get involves two messages"
    assert result.trace_summary.puts == 1 and result.trace_summary.gets == 1
    # The same-process put-then-get is ordered: no race.
    assert result.race_count == 0

    record(
        benchmark,
        experiment="E2 / Figure 2",
        put_data_messages=puts,
        get_messages=get_requests + get_replies,
        lock_messages=result.fabric_stats.lock_messages,
        detection_messages=result.fabric_stats.detection_messages,
    )


def test_fig2_decomposition_invariant_under_clock_transport(benchmark):
    """Recalibration for the clock-transport layer: piggybacking clocks must
    leave Figure 2's data decomposition untouched (1 put message, 2 get
    messages) while the entire detection-message category disappears —
    the clocks ride inside the data payloads instead."""

    def run(mode):
        runtime = figure2_put_get(clock_transport=mode)
        result = runtime.run()
        return runtime, result

    (roundtrip_rt, roundtrip), (piggyback_rt, piggyback) = benchmark(
        lambda: (run("roundtrip"), run("piggyback"))
    )
    for runtime in (roundtrip_rt, piggyback_rt):
        assert runtime.fabric.message_count(MessageKind.PUT_DATA) == 1
        assert runtime.fabric.message_count(MessageKind.GET_REQUEST) == 1
        assert runtime.fabric.message_count(MessageKind.GET_REPLY) == 1
    assert roundtrip.fabric_stats.detection_messages == 4  # 2 per access
    assert piggyback.fabric_stats.detection_messages == 0
    # Riders: the put's data message, the get's request (origin clock out)
    # and the get's reply (datum history back) — mirroring Algorithm 5's
    # fetch + update pair without any extra message.
    assert piggyback.clock_transport_stats["piggybacked_messages"] == 3
    assert (
        piggyback.fabric_stats.total_messages
        == roundtrip.fabric_stats.total_messages - 4
    ), "piggybacking must remove exactly the clock round trips"
    assert piggyback.race_count == roundtrip.race_count == 0
    record(
        benchmark,
        experiment="E2 / clock-transport recalibration",
        total_roundtrip=roundtrip.fabric_stats.total_messages,
        total_piggyback=piggyback.fabric_stats.total_messages,
        piggybacked_bytes=piggyback.clock_transport_stats["piggybacked_bytes"],
    )


def test_fig2_message_counts_scale_linearly_with_operations(benchmark):
    """Shape check: k puts + k gets => k data messages + 2k data messages."""
    from repro.runtime.runtime import DSMRuntime, RuntimeConfig

    k = 8

    def build_and_run():
        runtime = DSMRuntime(RuntimeConfig(world_size=2, latency="constant"))
        runtime.declare_array("cells", k, owner=1, initial=0)

        def writer(api):
            for index in range(k):
                yield from api.put("cells", index, index=index)
            for index in range(k):
                yield from api.get("cells", index=index)

        def idle(api):
            yield from api.compute(0.0)

        runtime.set_program(0, writer)
        runtime.set_program(1, idle)
        runtime.run()
        return runtime

    runtime = benchmark(build_and_run)
    assert runtime.fabric.message_count(MessageKind.PUT_DATA) == k
    assert runtime.fabric.message_count(MessageKind.GET_REQUEST) == k
    assert runtime.fabric.message_count(MessageKind.GET_REPLY) == k
    record(benchmark, experiment="E2 scaling", operations=2 * k)
