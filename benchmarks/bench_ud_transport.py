"""E19 — the UD service level's cost/soundness trade, gated.

``RuntimeConfig.transport="ud"`` swaps reliable FIFO delivery for
sequence-numbered datagrams the fabric may drop, duplicate or reorder,
repaired by receiver-driven clock resync.  Two claims, both measurable on
a fully seeded simulation:

* **quiet-fabric parity** — when nothing is dropped, UD costs exactly
  what RC costs: same message count, same payload bytes, same sim-time,
  same verdict.  The sequencing machinery is free until the fabric
  misbehaves.

* **bounded recovery** — under increasing forced drop rates, every lost
  datagram is repaired by retransmission plus at most one resync round
  trip, so fabric traffic and sim-time grow linearly-boundedly with the
  drop rate while the race verdict stays *identical* at every rate (the
  soundness contract: recovery must never stamp a stale clock and mask
  the seeded race).

Writes ``BENCH_ud_transport.json``; CI's perf gate (``tools/perf_gate.py``)
compares it against the committed baseline, so datagram counts, recovery
traffic and elapsed sim-times can only regress loudly.
"""

import json
import os

from conftest import record

from repro.explore.controller import PassthroughStrategy, ScheduleController
from repro.explore.fuzzer import ScheduleFuzzer
from repro.runtime.runtime import DSMRuntime, RuntimeConfig

#: Where the per-push perf artifact lands (CI uploads and gates it).
BENCH_JSON = os.environ.get("REPRO_BENCH_UD_JSON", "BENCH_ud_transport.json")

STORM = 24
DROP_RATES = (0.0, 0.1, 0.3)


def _build(transport, seed=0):
    """A put storm on a sparse clock wire plus one guaranteed race.

    Rank 0 reads ``shared[0]`` before the storm, rank 2 overwrites it long
    after; rank 2 receives no message, so no causal chain can ever order
    the write after the read — the race must be flagged at every drop
    rate, whatever recovery the fabric forces."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=3,
            seed=seed,
            latency="constant",
            clock_transport="piggyback",
            clock_wire="delta",
            transport=transport,
        )
    )
    runtime.declare_array("cells", 8, owner=1, initial=0)
    runtime.declare_array("shared", 1, owner=1, initial=0)

    def prober(api):
        seen = yield from api.get("shared", index=0)
        api.private.write("observed", seen)
        for step in range(STORM):
            yield from api.put("cells", step, index=step % 8)

    def owner(api):
        yield from api.compute(1.0)

    def late_writer(api):
        yield from api.compute(2000.0)
        yield from api.put("shared", 7, index=0)

    runtime.set_program(0, prober)
    runtime.set_program(1, owner)
    runtime.set_program(2, late_writer)
    return runtime


def _run(transport, drop_rate=0.0, seed=0):
    runtime = _build(transport, seed=seed)
    if drop_rate:
        strategy = ScheduleFuzzer(
            seed=7,
            reorder_probability=0.0,
            tie_shuffle_probability=0.0,
            drop_probability=drop_rate,
        )
    else:
        strategy = PassthroughStrategy()
    runtime.sim.install_controller(ScheduleController(strategy))
    result = runtime.run()
    stats = runtime.clock_transport_stats()
    return {
        "result": result,
        "messages": result.fabric_stats.total_messages,
        "bytes": result.fabric_stats.total_bytes,
        "sim_time": result.elapsed_sim_time,
        "datagrams": stats.ud_datagrams,
        "dropped": stats.ud_dropped,
        "retransmits": stats.ud_retransmits,
        "resyncs": stats.ud_resyncs,
        "resync_requests": stats.ud_resync_requests,
    }


def test_quiet_fabric_parity(benchmark):
    runs = benchmark(lambda: {mode: _run(mode) for mode in ("rc", "ud")})
    rc, ud = runs["rc"], runs["ud"]
    # The sequencing machinery is free until the fabric misbehaves:
    assert ud["messages"] == rc["messages"]
    assert ud["bytes"] == rc["bytes"]
    assert ud["sim_time"] == rc["sim_time"]
    assert ud["result"].race_count == rc["result"].race_count
    assert ud["result"].final_shared_values == rc["result"].final_shared_values
    # ...and the datagram path really ran.
    assert ud["datagrams"] > 0
    assert ud["dropped"] == ud["retransmits"] == ud["resyncs"] == 0
    record(
        benchmark,
        experiment="E19 / quiet-fabric parity",
        rc_messages=rc["messages"],
        ud_messages=ud["messages"],
        ud_datagrams=ud["datagrams"],
        sim_time=ud["sim_time"],
    )
    _ARTIFACT["quiet"] = {
        mode: {
            "messages": runs[mode]["messages"],
            "payload_bytes": runs[mode]["bytes"],
            "sim_time": runs[mode]["sim_time"],
        }
        for mode in ("rc", "ud")
    }
    _ARTIFACT["quiet"]["ud"]["datagrams"] = ud["datagrams"]
    _flush()


def test_recovery_cost_is_bounded_and_verdicts_hold(benchmark):
    runs = benchmark(
        lambda: {rate: _run("ud", drop_rate=rate) for rate in DROP_RATES}
    )
    quiet = runs[0.0]
    previous_messages = 0
    for rate in DROP_RATES:
        run = runs[rate]
        # Soundness at every rate: the seeded race is flagged, memory
        # converges to the same values, reads observed the same data.
        assert run["result"].race_count == quiet["result"].race_count
        assert run["result"].race_count >= 1
        assert (
            run["result"].final_shared_values
            == quiet["result"].final_shared_values
        )
        if rate:
            assert run["dropped"] > 0, f"rate {rate} never dropped"
            # Every drop is repaired: retransmissions flow, the datagram
            # count exceeds the quiet run's, and nothing is lost for good
            # (final memory already asserted equal above).
            assert run["retransmits"] >= 1
            assert run["datagrams"] > quiet["datagrams"]
        # ...and recovery traffic grows with the drop rate.
        assert run["messages"] >= previous_messages
        previous_messages = run["messages"]
    heavy = runs[DROP_RATES[-1]]
    assert heavy["resyncs"] >= 1, "heavy drops must exercise the resync path"
    assert heavy["sim_time"] > quiet["sim_time"]
    record(
        benchmark,
        experiment="E19 / bounded recovery",
        **{
            f"rate_{rate}_messages": runs[rate]["messages"]
            for rate in DROP_RATES
        },
        heavy_dropped=heavy["dropped"],
        heavy_resyncs=heavy["resyncs"],
    )
    _ARTIFACT["recovery"] = {
        str(rate): {
            "messages": runs[rate]["messages"],
            "payload_bytes": runs[rate]["bytes"],
            "sim_time": runs[rate]["sim_time"],
            "datagrams": runs[rate]["datagrams"],
            "dropped": runs[rate]["dropped"],
            "retransmits": runs[rate]["retransmits"],
            "resyncs": runs[rate]["resyncs"],
            "races": runs[rate]["result"].race_count,
        }
        for rate in DROP_RATES
    }
    _flush()


_ARTIFACT = {
    "format": "repro-bench-ud-transport",
    "version": 1,
    "storm_puts": STORM,
    "drop_rates": list(DROP_RATES),
}


def _flush() -> None:
    with open(BENCH_JSON, "w") as handle:
        json.dump(_ARTIFACT, handle, indent=2, sort_keys=True)
