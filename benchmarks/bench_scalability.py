"""E14 — scalability of the instrumented runtime with process and access count.

The paper positions detection as a debugging-scale technique ("typically,
about 10 processes", Section V-A).  The benchmark measures, for growing world
sizes and access counts, the wall-clock cost of the simulation with detection
enabled, the message overhead attributable to detection, and the clock
storage — confirming that the costs grow as the analysis predicts (linearly in
the number of remote accesses; clock storage linear in n per shared datum) and
that a 16-process debugging run remains comfortably simulable.
"""

import time

from conftest import record

from repro.analysis.overhead import detection_overhead_for
from repro.workloads.random_access import RandomAccessWorkload

WORLD_SIZES = (2, 4, 8, 16)


def run_world(world_size, operations_per_rank=8):
    workload = RandomAccessWorkload(
        world_size=world_size,
        operations_per_rank=operations_per_rank,
        hotspot_fraction=0.4,
        write_fraction=0.5,
        array_length=64,
    )
    started = time.perf_counter()
    outcome = workload.run(seed=0)
    elapsed = time.perf_counter() - started
    overhead = detection_overhead_for(outcome.run)
    return {
        "world_size": world_size,
        "wall_seconds": elapsed,
        "remote_accesses": overhead["remote_accesses"],
        "detection_messages": overhead["detection_messages"],
        "detection_messages_per_access": overhead["detection_messages_per_access"],
        "clock_storage_entries": overhead["clock_storage_entries"],
        "races": outcome.run.race_count,
        "total_messages": outcome.run.fabric_stats.total_messages,
    }


def test_scaling_with_world_size(benchmark):
    rows = benchmark(lambda: [run_world(n) for n in WORLD_SIZES])

    # Message overhead per access is bounded by the protocol (<= 2 extra
    # messages per remote access) at every scale.
    for row in rows:
        assert row["detection_messages_per_access"] <= 2.0 + 1e-9

    # Clock storage grows with the world size (Section IV-C).
    storage = [row["clock_storage_entries"] for row in rows]
    assert storage == sorted(storage) and storage[-1] > storage[0]

    # A 16-process debugging run stays cheap to simulate (well under a minute).
    assert rows[-1]["wall_seconds"] < 60.0

    record(benchmark, experiment="E14 scaling with n", rows=rows)


def test_scaling_with_access_count(benchmark):
    """Total messages and detection messages grow linearly with accesses."""

    def measure():
        rows = []
        for operations in (4, 8, 16, 32):
            rows.append((operations, run_world(4, operations_per_rank=operations)))
        return rows

    rows = benchmark(measure)
    detection = [row["detection_messages"] for _ops, row in rows]
    accesses = [row["remote_accesses"] for _ops, row in rows]
    assert detection == sorted(detection)
    assert accesses == sorted(accesses)
    # Linearity check within a loose factor: messages per access stays flat.
    ratios = [row["detection_messages_per_access"] for _ops, row in rows]
    assert max(ratios) - min(ratios) < 0.5

    record(
        benchmark,
        experiment="E14 scaling with access count",
        rows=[{"operations_per_rank": ops, **row} for ops, row in rows],
    )
