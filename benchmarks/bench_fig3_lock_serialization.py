"""E3 — Figure 3: a put is delayed until the end of a get on the same data.

The NIC lock on the target cell serializes the two operations: the benchmark
asserts that the put contended for the lock, that the reader still observed
the pre-put value (the get completed first), and that the put's completion
time exceeds the get's.
"""

from conftest import record

from repro.workloads.figures import figure3_lock_serialization


def run_scenario():
    runtime = figure3_lock_serialization()
    result = runtime.run()
    return runtime, result


def test_fig3_put_delayed_behind_get(benchmark):
    runtime, result = benchmark(run_scenario)

    get_ops = [op for op in runtime.recorder.operations("get") if op.origin == 2]
    put_ops = [op for op in runtime.recorder.operations("put") if op.origin == 0]
    assert len(get_ops) == 1 and len(put_ops) == 1
    get_op, put_op = get_ops[0], put_ops[0]

    # The put was queued behind the get's lock (Figure 3's delay).
    assert runtime.lock_tables[1].contended_acquisitions >= 1
    assert put_op.end_time > get_op.end_time
    # The reader saw the value as it was before the delayed put.
    assert result.per_rank_private[2]["read"] == "initial"
    assert result.shared_value("d") == "from-P0"

    record(
        benchmark,
        experiment="E3 / Figure 3",
        get_completion=get_op.end_time,
        put_completion=put_op.end_time,
        put_delay=put_op.end_time - get_op.end_time,
        lock_contention=runtime.lock_tables[1].contended_acquisitions,
        races=result.race_count,
    )


def test_fig3_no_delay_on_disjoint_data(benchmark):
    """Control: operations on different cells do not serialize."""
    from repro.runtime.runtime import DSMRuntime, RuntimeConfig

    def run():
        runtime = DSMRuntime(RuntimeConfig(world_size=3, latency="constant"))
        runtime.declare_scalar("d0", owner=1, initial=0)
        runtime.declare_scalar("d1", owner=1, initial=0)

        def reader(api):
            yield from api.get("d0")

        def writer(api):
            yield from api.compute(1.5)
            yield from api.put("d1", "x")

        def idle(api):
            yield from api.compute(0.0)

        runtime.set_program(0, writer)
        runtime.set_program(1, idle)
        runtime.set_program(2, reader)
        runtime.run()
        return runtime

    runtime = benchmark(run)
    assert runtime.lock_tables[1].contended_acquisitions == 0
    record(benchmark, experiment="E3 control", lock_contention=0)
