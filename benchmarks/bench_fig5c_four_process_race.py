"""E7 — Figure 5c: ordered issuers, unordered arrivals — race detected.

``m1`` and ``m3`` both write datum ``a`` on P1.  They are ordered at the
issuing processes (P0's program order, then the data flow of ``m2`` to P2),
but nothing orders their *arrivals* at P1's memory, so their outcome depends
on timing and the paper reports a detected race.  The ablation benchmark shows
that a detector without the owner-reception convention misses exactly this
case.
"""

from conftest import record

from repro.core.detector import DetectorConfig
from repro.workloads.figures import figure5c_four_process_chain


def run_scenario():
    runtime = figure5c_four_process_chain()
    result = runtime.run()
    return runtime, result


def test_fig5c_arrival_order_race_detected(benchmark):
    _runtime, result = benchmark(run_scenario)

    assert result.race_count == 1
    race = result.race_records()[0]
    assert race.symbol == "a"
    assert race.current_rank == 2 and race.previous_rank == 0

    record(
        benchmark,
        experiment="E7 / Figure 5c",
        races=result.race_count,
        current_clock=str(race.current_clock),
        previous_clock=str(race.previous_clock),
    )


def test_fig5c_ablation_issuing_order_only_misses_it(benchmark):
    """Without the owner-reception tick the race on ``a`` disappears."""

    def run():
        runtime = figure5c_four_process_chain(
            detector=DetectorConfig(write_effect_ticks_owner=False)
        )
        return runtime.run()

    result = benchmark(run)
    racy_symbols = {race.symbol for race in result.race_records()}
    assert "a" not in racy_symbols, (
        "pure issuing-order happens-before cannot see the arrival race on a"
    )
    record(
        benchmark,
        experiment="E7 ablation (no owner tick)",
        races_on_a=0,
        total_reports=result.race_count,
    )
