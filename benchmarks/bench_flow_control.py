"""E18 — the adaptive runtime control plane's three perf claims, gated.

The control plane (``flow_control``, ``cq_moderation_timer``,
``clock_wire_resync="adaptive"``) trades protocol chatter for explicit
state, and each knob's win is measurable on a fully seeded simulation:

* **credit vs RNR under saturation** — a sender overrunning a slow
  receiver.  RNR-retry mode blindly retransmits on every receiver-not-ready
  (each retry is a full extra data message on the fabric); credit mode
  stalls the sender locally until the receiver grants a buffer.  At equal
  payload bytes, credit must move *strictly fewer messages* (exactly the
  retransmissions disappear), suffer *zero* RNR events, and — under a
  realistically coarse RNR timer — finish *no later*.

* **(cq_count, cq_usec) moderation** — a burst of posted puts.  The timer
  coalesces completions across drain bursts, so CQE events drop below
  one-per-completion at identical verdicts and final values.

* **adaptive resync** — a busy channel in a wide world touches few clock
  components, so the self-tuning cadence stretches its resync period and
  saves clock bytes over the fixed default.

Writes ``BENCH_flow_control.json``; CI's perf gate (``tools/perf_gate.py``)
compares it against the committed baseline, so message counts, RNR events,
CQ events, clock bytes and elapsed sim-times can only regress loudly.
"""

import json
import os

from conftest import record

from repro.memory.directory import PlacementPolicy
from repro.net.clock_transport import ADAPTIVE_RESYNC_START
from repro.runtime.runtime import DSMRuntime, RuntimeConfig

#: Where the per-push perf artifact lands (CI uploads and gates it).
BENCH_JSON = os.environ.get("REPRO_BENCH_FLOW_JSON", "BENCH_flow_control.json")

#: Real InfiniBand RNR timers are coarse (hundreds of microseconds against
#: single-digit wire latencies); the head-to-head is only honest with a
#: backoff well above the wire latency.
COARSE_BACKOFF = 8.0
RECEIVER_THINK = 3.0
MESSAGES = 24


def _saturating_run(flow_control, seed=0):
    """A blasting sender against a receiver that posts one buffer at a time."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            seed=seed,
            flow_control=flow_control,
            verbs_backpressure="block",
            verbs_rnr_backoff=COARSE_BACKOFF,
        )
    )
    runtime.declare_array(
        "inbox", 8, policy=PlacementPolicy.OWNER, owner=1, initial=0
    )

    def sender(api):
        for value in range(MESSAGES):
            yield from api.isend_throttled(1, value, symbol="inbox")
        yield from api.wait_all()

    def slow_receiver(api):
        received = 0
        while received < MESSAGES:
            api.irecv(0, "inbox", index=received % 8)
            done = yield from api.wait_recv(1)
            received += len(done)
            yield from api.compute(RECEIVER_THINK)

    runtime.set_program(0, sender)
    runtime.set_program(1, slow_receiver)
    result = runtime.run()
    return {
        "result": result,
        "messages": result.fabric_stats.total_messages,
        "rnr_events": sum(nic.rnr_retries for nic in runtime.nics),
        "sim_time": result.elapsed_sim_time,
    }


def _timer_run(timer, seed=0):
    """A burst of posted puts the moderation timer can coalesce."""
    runtime = DSMRuntime(
        RuntimeConfig(world_size=2, seed=seed, cq_moderation_timer=timer)
    )
    runtime.declare_array("cells", 8, owner=1, initial=0)

    def poster(api):
        for index in range(8):
            api.iput("cells", index + 1, index=index)
        yield from api.wait_all()

    def idle(api):
        yield from api.compute(1.0)

    runtime.set_program(0, poster)
    runtime.set_program(1, idle)
    result = runtime.run()
    cq = runtime.verbs_contexts[0].cq
    return {"result": result, "cq_events": cq.events, "sim_time": result.elapsed_sim_time}


def _resync_run(resync, world_size=8, seed=0):
    """One busy channel in a wide world: sparse frames patch ~2 of 8
    components, so the adaptive cadence stretches its period."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=world_size,
            seed=seed,
            clock_transport="piggyback",
            clock_wire="delta",
            clock_wire_resync=resync,
        )
    )
    runtime.declare_array("cells", 4, owner=1, initial=0)

    def writer(api):
        for step in range(3 * ADAPTIVE_RESYNC_START):
            yield from api.put("cells", step, index=step % 4)

    def idle(api):
        yield from api.compute(1.0)

    runtime.set_program(0, writer)
    for rank in range(1, world_size):
        runtime.set_program(rank, idle)
    result = runtime.run()
    return {
        "result": result,
        "clock_bytes": result.clock_transport_stats["piggybacked_bytes"],
        "sim_time": result.elapsed_sim_time,
    }


def test_credit_beats_rnr_under_saturation(benchmark):
    runs = benchmark(
        lambda: {mode: _saturating_run(mode) for mode in ("rnr", "credit")}
    )
    rnr, credit = runs["rnr"], runs["credit"]
    # Identical semantics at equal payload bytes...
    assert credit["result"].race_count == rnr["result"].race_count
    assert (
        credit["result"].final_shared_values == rnr["result"].final_shared_values
    )
    # ...the saturation is real and credit mode never retries...
    assert rnr["rnr_events"] > 0
    assert credit["rnr_events"] == 0
    # ...exactly the blind retransmissions disappear from the fabric...
    assert credit["messages"] < rnr["messages"]
    assert rnr["messages"] - credit["messages"] == rnr["rnr_events"]
    # ...and under a coarse RNR timer, stalling loses no sim-time.
    assert credit["sim_time"] <= rnr["sim_time"]
    record(
        benchmark,
        experiment="E18 / credit vs RNR saturation",
        rnr_messages=rnr["messages"],
        credit_messages=credit["messages"],
        rnr_events=rnr["rnr_events"],
        rnr_sim_time=rnr["sim_time"],
        credit_sim_time=credit["sim_time"],
    )
    _ARTIFACT["saturation"] = {
        mode: {
            "messages": runs[mode]["messages"],
            "rnr_events": runs[mode]["rnr_events"],
            "sim_time": runs[mode]["sim_time"],
        }
        for mode in ("rnr", "credit")
    }
    _flush()


def test_moderation_timer_coalesces_cq_events(benchmark):
    runs = benchmark(
        lambda: {timer: _timer_run(timer) for timer in (None, (4, 50.0))}
    )
    plain, moderated = runs[None], runs[(4, 50.0)]
    assert (
        moderated["result"].final_shared_values
        == plain["result"].final_shared_values
    )
    assert moderated["result"].race_count == plain["result"].race_count
    assert moderated["cq_events"] < plain["cq_events"]
    record(
        benchmark,
        experiment="E18 / CQ moderation timer",
        cq_events_unmoderated=plain["cq_events"],
        cq_events_moderated=moderated["cq_events"],
    )
    _ARTIFACT["cq_moderation_timer"] = {
        "unmoderated": {
            "cq_events": plain["cq_events"],
            "sim_time": plain["sim_time"],
        },
        "moderated": {
            "cq_events": moderated["cq_events"],
            "sim_time": moderated["sim_time"],
        },
    }
    _flush()


def test_adaptive_resync_saves_clock_bytes(benchmark):
    runs = benchmark(
        lambda: {
            resync: _resync_run(resync)
            for resync in (ADAPTIVE_RESYNC_START, "adaptive")
        }
    )
    fixed, adaptive = runs[ADAPTIVE_RESYNC_START], runs["adaptive"]
    assert adaptive["result"].race_count == fixed["result"].race_count
    assert (
        adaptive["result"].final_shared_values
        == fixed["result"].final_shared_values
    )
    assert adaptive["clock_bytes"] < fixed["clock_bytes"]
    assert adaptive["sim_time"] == fixed["sim_time"], (
        "the cadence is pure byte accounting — it cannot move sim-time"
    )
    record(
        benchmark,
        experiment="E18 / adaptive resync",
        fixed_clock_bytes=fixed["clock_bytes"],
        adaptive_clock_bytes=adaptive["clock_bytes"],
    )
    _ARTIFACT["adaptive_resync"] = {
        "fixed": {
            "clock_bytes": fixed["clock_bytes"],
            "sim_time": fixed["sim_time"],
        },
        "adaptive": {
            "clock_bytes": adaptive["clock_bytes"],
            "sim_time": adaptive["sim_time"],
        },
    }
    _flush()


_ARTIFACT = {
    "format": "repro-bench-flow-control",
    "version": 1,
    "coarse_rnr_backoff": COARSE_BACKOFF,
    "saturation_messages": MESSAGES,
}


def _flush() -> None:
    with open(BENCH_JSON, "w") as handle:
        json.dump(_ARTIFACT, handle, indent=2, sort_keys=True)
