"""E1 — Figure 1: the memory organization of the model.

Figure 1 shows three processors, each mapping a private and a public area, and
remote put/get crossing the public address space.  The benchmark builds that
exact machine, exercises one access of each kind, and asserts the structural
properties the figure depicts: private memory is only reachable by its owner,
public memory is reachable by everyone through the NIC, and the symbol
directory resolves shared names to ``(processor, address)`` pairs.
"""

from conftest import record

from repro.runtime.runtime import DSMRuntime, RuntimeConfig


def build_and_run():
    runtime = DSMRuntime(RuntimeConfig(world_size=3, latency="constant"))
    runtime.declare_scalar("shared_x", owner=1, initial="X0")
    runtime.declare_array("shared_block", 6, initial=0)

    def program(api):
        # Private memory: local variables, invisible to other ranks.
        api.private.write("local_state", api.rank * 10)
        # Public memory: reachable from any rank through put/get.
        yield from api.put("shared_block", api.rank, index=api.rank)
        value = yield from api.get("shared_x")
        api.private.write("observed_x", value)

    runtime.set_spmd_program(program)
    result = runtime.run()
    return runtime, result


def test_fig1_memory_organization(benchmark):
    runtime, result = benchmark(build_and_run)

    # Global address space: the shared scalar resolves to (processor, address).
    address = runtime.directory.resolve("shared_x")
    assert address.rank == 1

    # Private memory stays private: each rank sees only its own local state.
    for rank in range(3):
        assert result.per_rank_private[rank]["local_state"] == rank * 10
        assert result.per_rank_private[rank]["observed_x"] == "X0"

    # Public memory is remotely accessible: every rank's element was written.
    assert result.final_shared_values["shared_block"][:3] == [0, 1, 2]

    # Locality is exactly what the directory decided (the "compiler" role).
    locality = runtime.directory.locality_map("shared_block")
    assert sum(locality.values()) == 6

    record(
        benchmark,
        experiment="E1 / Figure 1",
        world_size=3,
        shared_symbols=len(runtime.directory.symbols()),
        data_messages=result.fabric_stats.data_messages,
        races=result.race_count,
    )
