"""E4 — Figure 4: two concurrent gets are not a race (dual-clock precision).

Both readers observe the initialized value, the dual-clock detector stays
silent, and — the ablation half of the claim — a single-clock detector run
over the same trace *does* report the read/read pair, which is exactly the
false positive the write clock eliminates (Section IV-D).
"""

from conftest import record

from repro.detectors.single_clock import SingleClockDetector
from repro.workloads.figures import figure4_concurrent_reads


def run_scenario():
    runtime = figure4_concurrent_reads()
    result = runtime.run()
    return runtime, result


def test_fig4_concurrent_reads_not_flagged(benchmark):
    runtime, result = benchmark(run_scenario)

    assert result.race_count == 0, "Figure 4: concurrent reads must not be a race"
    assert result.per_rank_private[0]["a"] == "A"
    assert result.per_rank_private[2]["a"] == "A"

    # Ablation: the single-clock baseline flags the same trace.
    single = SingleClockDetector().detect(runtime.recorder.accesses(), 3)
    read_read = [f for f in single.findings if not f.involves_write()]
    assert single.count() >= 1
    assert read_read, "the single-clock baseline should report the read/read pair"

    record(
        benchmark,
        experiment="E4 / Figure 4",
        dual_clock_reports=result.race_count,
        single_clock_reports=single.count(),
        single_clock_read_read_reports=len(read_read),
    )


def test_fig4_many_concurrent_readers_stay_silent(benchmark):
    """Shape check: the result holds for any number of concurrent readers."""
    from repro.runtime.runtime import DSMRuntime, RuntimeConfig

    def run():
        runtime = DSMRuntime(RuntimeConfig(world_size=8, latency="uniform"))
        runtime.declare_scalar("a", owner=0, initial="A")

        def reader(api):
            value = yield from api.get("a")
            api.private.write("a", value)

        runtime.set_spmd_program(reader)
        return runtime.run()

    result = benchmark(run)
    assert result.race_count == 0
    assert all(private["a"] == "A" for private in result.per_rank_private.values())
    record(benchmark, experiment="E4 scaling", readers=8, races=result.race_count)
