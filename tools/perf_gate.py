#!/usr/bin/env python3
"""CI perf-regression gate over committed benchmark baselines.

The benchmarks write machine-readable artifacts (``BENCH_clock_transport.json``,
``BENCH_clock_wire.json``, ``BENCH_overhead_detection.json``,
``BENCH_obs_overhead.json``) from fully seeded, deterministic simulations, so
their message/byte counts are stable run to run.  This gate compares a freshly
produced artifact against the committed baseline under
``benchmarks/baselines/`` and fails the job when a *cost* metric regressed
beyond the tolerance — which starts (and then protects) the repo's perf
trajectory.

Usage (what CI runs)::

    python tools/perf_gate.py BENCH_clock_transport.json BENCH_clock_wire.json \
        --baselines benchmarks/baselines --tolerance 0.05

Semantics:

* leaves whose key names a **cost** (``*messages*``, ``*bytes*``,
  ``*_per_op``, ``*per_message*``, ``round_trips``, ``*joins*``, ``*checks*``,
  ``*compares*``, ``*events*``, ``races``, ``*instruments*``) are gated:
  ``fresh > baseline * (1 + tolerance)`` is a regression (a zero baseline
  tolerates no growth at all);
* leaves whose key names a **benefit** (``*elided*``, ``*saved*``,
  ``*coalesced*``) are informational and never gated;
* a metric present in the baseline but missing from the fresh artifact is a
  regression (the benchmark silently stopped measuring it); brand-new fresh
  metrics pass (commit a refreshed baseline to start gating them);
* a missing baseline file is an error with the exact ``cp`` to run —
  committing the first baseline is how a new benchmark joins the gate.

Improvements are reported but never fail the job; refresh the baseline to
bank them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: Key substrings marking a leaf as a gated cost metric (higher is worse).
#: ``sim_time`` gates end-to-end simulated run time (``total_sim_time``,
#: ``path_sim_time``) — the metric the critical-path benchmarks exist for.
COST_TOKENS = (
    "messages",
    "bytes",
    "per_op",
    "per_message",
    "round_trips",
    "joins",
    "checks",
    "compares",
    "events",
    "races",
    "instruments",
    "sim_time",
)

#: Key substrings marking a leaf as a benefit metric (higher is better) —
#: checked first, so e.g. ``wire_bytes_saved`` is not gated as a cost.
#: ``epoch_hits`` counts full vector compares replaced by O(1) epoch probes
#: (the detector's FastTrack-style fast path): more hits means less work,
#: so it must never be gated as if it were a cost.
BENEFIT_TOKENS = ("elided", "saved", "coalesced", "epoch_hits")

DEFAULT_TOLERANCE = 0.05
DEFAULT_BASELINES_DIR = os.path.join("benchmarks", "baselines")


@dataclass(frozen=True)
class Finding:
    """One gated metric's comparison outcome."""

    path: str
    baseline: float
    fresh: Optional[float]

    @property
    def missing(self) -> bool:
        """True when the fresh artifact no longer reports this metric."""
        return self.fresh is None

    def describe(self) -> str:
        if self.missing:
            return f"{self.path}: metric disappeared (baseline {self.baseline:g})"
        delta = self.fresh - self.baseline
        pct = (delta / self.baseline * 100.0) if self.baseline else float("inf")
        return (
            f"{self.path}: {self.baseline:g} -> {self.fresh:g} "
            f"({'+' if delta >= 0 else ''}{delta:g}, {pct:+.1f}%)"
        )


def is_gated_cost(path: str) -> bool:
    """Is the leaf at dotted *path* a cost metric the gate enforces?"""
    lowered = path.lower()
    if any(token in lowered for token in BENEFIT_TOKENS):
        return False
    return any(token in lowered for token in COST_TOKENS)


def _numeric_leaves(tree: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    if isinstance(tree, bool):
        return
    if isinstance(tree, (int, float)):
        yield prefix, float(tree)
        return
    if isinstance(tree, dict):
        for key in sorted(tree):
            child = f"{prefix}.{key}" if prefix else str(key)
            yield from _numeric_leaves(tree[key], child)
    elif isinstance(tree, list):
        for index, item in enumerate(tree):
            yield from _numeric_leaves(item, f"{prefix}[{index}]")


def compare_trees(
    fresh: Dict, baseline: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> Tuple[List[Finding], List[Finding]]:
    """Compare two benchmark JSON trees; returns ``(regressions, improvements)``.

    Only gated cost leaves (see :func:`is_gated_cost`) participate.  A fresh
    value above ``baseline * (1 + tolerance)`` — or any growth from a zero
    baseline — is a regression; a fresh value below the baseline is an
    improvement (reported, never failing).
    """
    fresh_leaves = dict(_numeric_leaves(fresh))
    regressions: List[Finding] = []
    improvements: List[Finding] = []
    for path, base_value in _numeric_leaves(baseline):
        if not is_gated_cost(path):
            continue
        fresh_value = fresh_leaves.get(path)
        if fresh_value is None:
            regressions.append(Finding(path, base_value, None))
            continue
        allowance = base_value * (1.0 + tolerance)
        if fresh_value > allowance:
            regressions.append(Finding(path, base_value, fresh_value))
        elif fresh_value < base_value:
            improvements.append(Finding(path, base_value, fresh_value))
    return regressions, improvements


def _critical_path_sections(
    tree: object, prefix: str = ""
) -> Iterator[Tuple[str, Dict]]:
    """Yield every ``critical_path`` summary object in a benchmark tree.

    Benchmarks that record path attribution embed
    ``{"critical_path": {"path_sim_time": ..., "categories": {...}}}``
    sections; the explainer matches them by dotted path across the fresh
    and baseline artifacts.  (Deliberately dependency-free — this script
    must run without the package on ``sys.path``.)
    """
    if not isinstance(tree, dict):
        return
    for key in sorted(tree):
        child = f"{prefix}.{key}" if prefix else str(key)
        node = tree[key]
        if (
            key == "critical_path"
            and isinstance(node, dict)
            and isinstance(node.get("categories"), dict)
        ):
            yield child, node
        else:
            yield from _critical_path_sections(node, child)


def explain_regression(fresh: Dict, baseline: Dict) -> List[str]:
    """Attribute the run-time delta to critical-path categories, ranked.

    For every ``critical_path`` section present in both artifacts, compare
    per-category path time and emit a table with the biggest absolute mover
    first — the "why" behind a ``*_sim_time`` regression.  Returns printable
    lines (empty when there is nothing to explain).
    """
    lines: List[str] = []
    baseline_sections = dict(_critical_path_sections(baseline))
    for path, section in _critical_path_sections(fresh):
        base = baseline_sections.get(path)
        if base is None:
            continue
        fresh_total = float(section.get("path_sim_time", 0.0) or 0.0)
        base_total = float(base.get("path_sim_time", 0.0) or 0.0)
        fresh_cats = section.get("categories", {})
        base_cats = base.get("categories", {})
        rows = []
        for category in sorted(set(fresh_cats) | set(base_cats)):
            before = float(base_cats.get(category, 0.0) or 0.0)
            after = float(fresh_cats.get(category, 0.0) or 0.0)
            if after != before:
                rows.append((category, before, after, after - before))
        if not rows:
            continue
        rows.sort(key=lambda row: (-abs(row[3]), row[0]))
        total_delta = fresh_total - base_total
        lines.append(
            f"{path}: {base_total:g} -> {fresh_total:g} sim time "
            f"({'+' if total_delta >= 0 else ''}{total_delta:g})"
        )
        for category, before, after, delta in rows:
            share = (delta / total_delta * 100.0) if total_delta else float("inf")
            lines.append(
                f"    {category:<18} {before:>10.4f} -> {after:>10.4f}  "
                f"({'+' if delta >= 0 else ''}{delta:.4f}"
                + (f", {share:.0f}% of the delta)" if total_delta else ")")
            )
    return lines


def gate_artifact(
    fresh_path: str,
    baselines_dir: str = DEFAULT_BASELINES_DIR,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[Finding], List[Finding]]:
    """Gate one artifact file against its committed baseline twin.

    Raises ``FileNotFoundError`` with the exact fix when either file is
    absent — a benchmark without a committed baseline is not yet gated, and
    silently skipping it would defeat the point.
    """
    if not os.path.exists(fresh_path):
        raise FileNotFoundError(
            f"fresh benchmark artifact {fresh_path!r} not found — did the "
            f"benchmark step run before the gate?"
        )
    baseline_path = os.path.join(baselines_dir, os.path.basename(fresh_path))
    if not os.path.exists(baseline_path):
        raise FileNotFoundError(
            f"no committed baseline for {os.path.basename(fresh_path)!r}; "
            f"start the trajectory with: cp {fresh_path} {baseline_path}"
        )
    with open(fresh_path) as handle:
        fresh = json.load(handle)
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    return compare_trees(fresh, baseline, tolerance)


def render_step_summary(
    verdicts: List[Tuple[str, str, List[Finding], List[Finding], List[str]]],
    tolerance: float,
) -> str:
    """Render the per-artifact verdict table as GitHub-flavoured markdown.

    One row per gated artifact — status, regression/improvement counts and
    the worst offender — followed by the detailed findings and any
    ``--explain`` critical-path attribution, ready to append to the file
    named by ``$GITHUB_STEP_SUMMARY`` so the verdict shows up on the run
    page without digging through logs.
    """
    lines = [
        "## Perf gate",
        "",
        f"Tolerance: cost metrics may grow up to {tolerance:.0%} over the "
        "committed baseline.",
        "",
        "| artifact | verdict | regressions | improvements | worst offender |",
        "| --- | --- | --- | --- | --- |",
    ]
    for name, status, regressions, improvements, _explanation in verdicts:
        worst = max(
            regressions,
            key=lambda f: float("inf")
            if f.missing or not f.baseline
            else (f.fresh - f.baseline) / f.baseline,
            default=None,
        )
        icon = {"OK": "✅ OK", "REGRESSED": "❌ REGRESSED", "ERROR": "⚠️ ERROR"}[
            status
        ]
        lines.append(
            f"| `{name}` | {icon} | {len(regressions)} | {len(improvements)} "
            f"| {('`' + worst.describe() + '`') if worst else '—'} |"
        )
    lines.append("")
    for name, status, regressions, improvements, explanation in verdicts:
        details = [
            *(f"- ❌ {finding.describe()}" for finding in regressions),
            *(f"- ⬇️ improved: {finding.describe()}" for finding in improvements),
        ]
        if explanation and status == "ERROR":
            details.extend(f"- ⚠️ {line}" for line in explanation)
        elif explanation:
            details.append("- critical-path movement, biggest first:")
            details.extend(f"  - `{line.strip()}`" for line in explanation)
        if details:
            lines.append(f"### `{name}`")
            lines.extend(details)
            lines.append("")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifacts", nargs="+", help="freshly produced BENCH_*.json files"
    )
    parser.add_argument(
        "--baselines",
        default=DEFAULT_BASELINES_DIR,
        help="directory of committed baseline artifacts "
        f"(default: {DEFAULT_BASELINES_DIR})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed relative growth per cost metric "
        f"(default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print critical-path attribution tables even when the gate "
        "passes (they always print on a regression)",
    )
    args = parser.parse_args(argv)

    failed = False
    verdicts: List[Tuple[str, str, List[Finding], List[Finding], List[str]]] = []
    for artifact in args.artifacts:
        name = os.path.basename(artifact)
        try:
            regressions, improvements = gate_artifact(
                artifact, baselines_dir=args.baselines, tolerance=args.tolerance
            )
        except FileNotFoundError as error:
            print(f"ERROR: {error}")
            failed = True
            verdicts.append((name, "ERROR", [], [], [str(error)]))
            continue
        for finding in improvements:
            print(f"IMPROVED  [{name}] {finding.describe()}")
        for finding in regressions:
            print(f"REGRESSED [{name}] {finding.describe()}")
        if regressions:
            failed = True
        else:
            print(
                f"OK        [{name}] no cost metric grew beyond "
                f"{args.tolerance:.0%} of baseline"
            )
        explanation: List[str] = []
        if regressions or args.explain:
            with open(artifact) as handle:
                fresh = json.load(handle)
            baseline_path = os.path.join(args.baselines, os.path.basename(artifact))
            with open(baseline_path) as handle:
                baseline = json.load(handle)
            explanation = explain_regression(fresh, baseline)
            if explanation:
                print(f"EXPLAIN   [{name}] critical-path movement, biggest first:")
                for line in explanation:
                    print(f"          {line}")
        verdicts.append(
            (
                name,
                "REGRESSED" if regressions else "OK",
                regressions,
                improvements,
                explanation,
            )
        )
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(render_step_summary(verdicts, args.tolerance))
    if failed:
        print(
            "\nperf gate FAILED — if a regression is intended and justified, "
            "refresh the baseline under benchmarks/baselines/ in the same PR."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
