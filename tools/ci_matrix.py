#!/usr/bin/env python3
"""Declarative generator for CI's ``--expect-consistent`` knob matrix.

Every consistency-relevant runtime knob is declared ONCE in the
:data:`KNOBS` registry below.  From it this script derives the campaign
invocations CI runs:

* a deterministic greedy **pairwise covering array** — every value of every
  knob meets every value of every other knob in at least one row, at a
  fraction of the full cartesian product's cost;
* **full-cartesian islands** for the knob pairs with known interaction
  risk (:data:`HIGH_RISK_PAIRS`) — e.g. the UD service level must repair
  *every* clock wire format, not just the one a covering row happened to
  pair it with — with all other knobs pinned to their defaults.

The generated block lives between the ``ci-matrix:begin`` / ``ci-matrix:end``
markers inside ``.github/workflows/ci.yml``.  CI regenerates it and fails on
drift, so the workflow can never quietly fall out of sync with the registry:
adding a knob value here is the ONLY move needed to extend the matrix.

Usage::

    python tools/ci_matrix.py            # print the generated command block
    python tools/ci_matrix.py --stats    # row counts + coverage proof
    python tools/ci_matrix.py --check    # exit 1 if ci.yml drifted
    python tools/ci_matrix.py --write    # rewrite the block in ci.yml
"""

from __future__ import annotations

import argparse
import difflib
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

BEGIN_MARKER = "# --- ci-matrix:begin"
END_MARKER = "# --- ci-matrix:end"
DEFAULT_WORKFLOW = os.path.join(".github", "workflows", "ci.yml")

#: The patterns every matrix row explores: cheap, robustly racy, and flagged
#: in 100% of schedules under every knob combination (the every-schedule
#: guarantee the rows assert via ``--expect-consistent``).
PATTERNS = ("fig5a-concurrent-puts", "write-after-read-unsync")


@dataclass(frozen=True)
class Knob:
    """One consistency-relevant runtime knob: CLI flag + its legal values.

    ``extra_flags`` maps a value to additional CLI tokens that value
    requires — e.g. ``transport=ud`` rows carry nonzero drop/duplicate
    rates so the matrix actually exercises loss recovery, not just the
    datagram happy path.
    """

    name: str
    flag: str
    values: Tuple[str, ...]
    extra_flags: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def default(self) -> str:
        return self.values[0]


#: The single source of truth for the consistency matrix.  First value is
#: the island default.  Order is meaningful: it fixes the deterministic
#: greedy construction, so reordering entries changes the generated block.
KNOBS: Tuple[Knob, ...] = (
    Knob("clock_transport", "--clock-transport", ("roundtrip", "piggyback")),
    Knob("clock_wire", "--clock-wire", ("full", "delta", "truncated")),
    Knob("cq_moderation", "--cq-moderation", ("off", "on")),
    Knob("detector_epochs", "--detector-epochs", ("on", "off")),
    Knob("flow_control", "--flow-control", ("rnr", "credit")),
    Knob("cq_moderation_timer", "--cq-moderation-timer", ("off", "4,2.0")),
    Knob("clock_wire_resync", "--clock-wire-resync", ("64", "adaptive")),
    Knob(
        "transport",
        "--transport",
        ("rc", "ud"),
        extra_flags={"ud": ("--drop-rate", "0.25", "--duplicate-rate", "0.1")},
    ),
)

#: Knob pairs whose interaction is risky enough to deserve the FULL
#: cartesian product (other knobs at defaults), not just pairwise contact:
#:
#: * ``clock_transport x clock_wire`` — wire formats are only truly
#:   exercised by the sparse transport; the dense one must stay equivalent
#:   under every format too;
#: * ``transport x clock_wire`` — receiver-driven UD resync must rebuild
#:   receiver clock state for every wire format it can be dropped under;
#: * ``cq_moderation x cq_moderation_timer`` — the timer only coalesces
#:   when moderation is on, and must be a no-op when it is off.
HIGH_RISK_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("clock_transport", "clock_wire"),
    ("transport", "clock_wire"),
    ("cq_moderation", "cq_moderation_timer"),
)


def _pair(i: int, vi: str, j: int, vj: str) -> Tuple[int, str, int, str]:
    return (i, vi, j, vj) if i < j else (j, vj, i, vi)


def all_pairs(knobs: Sequence[Knob]) -> set:
    """Every (knob value, other knob value) pair the array must cover."""
    pairs = set()
    for i, a in enumerate(knobs):
        for j in range(i + 1, len(knobs)):
            b = knobs[j]
            for vi in a.values:
                for vj in b.values:
                    pairs.add(_pair(i, vi, j, vj))
    return pairs


def covering_rows(knobs: Optional[Sequence[Knob]] = None) -> List[Dict[str, str]]:
    """Greedy deterministic pairwise covering array (AETG-style).

    Rows are built knob by knob in registry order, each value chosen to
    cover the most still-uncovered pairs against the values already placed
    in the row (ties broken by registry value order, so the output is a
    pure function of the registry).
    """
    knobs = KNOBS if knobs is None else knobs
    uncovered = all_pairs(knobs)
    rows: List[Dict[str, str]] = []
    while uncovered:
        row: Dict[int, str] = {}
        for i, knob in enumerate(knobs):
            best_value, best_gain = knob.default, -1
            for value in knob.values:
                gain = sum(
                    1
                    for j, other in row.items()
                    if _pair(i, value, j, other) in uncovered
                )
                # Tie-break toward values still starved of coverage overall.
                gain = gain * 1000 + sum(
                    1
                    for pair in uncovered
                    if (pair[0] == i and pair[1] == value)
                    or (pair[2] == i and pair[3] == value)
                )
                if gain > best_gain:
                    best_value, best_gain = value, gain
            row[i] = best_value
        newly = {
            _pair(i, row[i], j, row[j])
            for i in row
            for j in row
            if i < j
        }
        if not (newly & uncovered):  # pragma: no cover - greedy always gains
            break
        uncovered -= newly
        rows.append({knobs[i].name: row[i] for i in sorted(row)})
    return rows


def island_rows(knobs: Optional[Sequence[Knob]] = None) -> List[Dict[str, str]]:
    """Full cartesian product for each high-risk pair, defaults elsewhere."""
    knobs = KNOBS if knobs is None else knobs
    by_name = {knob.name: knob for knob in knobs}
    rows: List[Dict[str, str]] = []
    for a_name, b_name in HIGH_RISK_PAIRS:
        a, b = by_name[a_name], by_name[b_name]
        for va in a.values:
            for vb in b.values:
                row = {knob.name: knob.default for knob in knobs}
                row[a.name] = va
                row[b.name] = vb
                rows.append(row)
    return rows


def matrix_rows(knobs: Optional[Sequence[Knob]] = None) -> List[Dict[str, str]]:
    """Covering array first, then islands, duplicates removed in order."""
    knobs = KNOBS if knobs is None else knobs
    seen = set()
    rows = []
    for row in covering_rows(knobs) + island_rows(knobs):
        key = tuple(sorted(row.items()))
        if key not in seen:
            seen.add(key)
            rows.append(row)
    return rows


def row_command(row: Dict[str, str], knobs: Optional[Sequence[Knob]] = None) -> str:
    """The one-line campaign invocation asserting a row's consistency.

    UD rows fuzz (drop/duplicate rates only apply to fuzzed schedules, and
    the fuzzer's default reorder probability keeps reordering nonzero);
    RC rows search systematically.
    """
    knobs = KNOBS if knobs is None else knobs
    tokens = ["python", "-m", "repro.explore", "--patterns", *PATTERNS]
    if row.get("transport") == "ud":
        tokens += ["--strategy", "fuzz", "--budget", "4", "--quantum", "4.0"]
    else:
        tokens += ["--strategy", "systematic", "--budget", "3", "--quantum", "4.0"]
    for knob in knobs:
        value = row[knob.name]
        tokens += [knob.flag, value]
        tokens += list(knob.extra_flags.get(value, ()))
    tokens.append("--expect-consistent")
    return " ".join(tokens)


def render_block(knobs: Optional[Sequence[Knob]] = None) -> List[str]:
    """The generated command lines (no indentation, no markers)."""
    knobs = KNOBS if knobs is None else knobs
    rows = matrix_rows(knobs)
    pairwise = len(covering_rows(knobs))
    lines = [
        f"# {len(rows)} rows: {pairwise}-row pairwise covering array over "
        f"{len(knobs)} knobs,",
        "# then full-cartesian islands for the high-risk pairs "
        "(duplicates pruned).",
    ]
    lines.extend(row_command(row, knobs) for row in rows)
    return lines


def _find_block(lines: List[str]) -> Tuple[int, int, str]:
    """Locate the generated block; returns (begin_idx, end_idx, indent)."""
    begin = end = None
    for index, line in enumerate(lines):
        if BEGIN_MARKER in line:
            begin = index
        elif END_MARKER in line:
            end = index
    if begin is None or end is None or end <= begin:
        raise SystemExit(
            f"markers {BEGIN_MARKER!r}/{END_MARKER!r} not found (or out of "
            f"order) in the workflow — re-add the generated block"
        )
    indent = lines[begin][: len(lines[begin]) - len(lines[begin].lstrip())]
    return begin, end, indent


def generate_workflow(workflow_text: str) -> str:
    """The workflow with the generated block refreshed from the registry."""
    lines = workflow_text.splitlines()
    begin, end, indent = _find_block(lines)
    generated = [indent + line for line in render_block()]
    return "\n".join(lines[: begin + 1] + generated + lines[end:]) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workflow",
        default=DEFAULT_WORKFLOW,
        help=f"workflow file holding the generated block "
        f"(default: {DEFAULT_WORKFLOW})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 (with a diff) if the workflow's generated block "
        "drifted from the registry",
    )
    parser.add_argument(
        "--write", action="store_true", help="rewrite the workflow's block"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print row counts and coverage"
    )
    args = parser.parse_args(argv)

    if args.stats:
        rows = matrix_rows()
        cartesian = 1
        for knob in KNOBS:
            cartesian *= len(knob.values)
        print(f"knobs:            {len(KNOBS)}")
        print(f"full cartesian:   {cartesian} rows")
        print(f"pairwise rows:    {len(covering_rows())}")
        print(f"island rows:      {len(island_rows())} (pre-dedup)")
        print(f"generated rows:   {len(rows)}")
        covered = set()
        index = {knob.name: i for i, knob in enumerate(KNOBS)}
        for row in rows:
            for a, va in row.items():
                for b, vb in row.items():
                    if index[a] < index[b]:
                        covered.add(_pair(index[a], va, index[b], vb))
        missing = all_pairs(KNOBS) - covered
        print(f"pair coverage:    {'complete' if not missing else missing}")
        return 0

    if args.check or args.write:
        with open(args.workflow) as handle:
            current = handle.read()
        regenerated = generate_workflow(current)
        if args.write:
            if regenerated != current:
                with open(args.workflow, "w") as handle:
                    handle.write(regenerated)
                print(f"updated {args.workflow}")
            else:
                print(f"{args.workflow} already up to date")
            return 0
        if regenerated != current:
            print(
                f"{args.workflow} drifted from tools/ci_matrix.py — "
                f"regenerate with: python tools/ci_matrix.py --write"
            )
            sys.stdout.writelines(
                difflib.unified_diff(
                    current.splitlines(keepends=True),
                    regenerated.splitlines(keepends=True),
                    fromfile=f"{args.workflow} (committed)",
                    tofile=f"{args.workflow} (regenerated)",
                )
            )
            return 1
        print(f"{args.workflow} matches the registry")
        return 0

    print("\n".join(render_block()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
