"""Property-based tests for detector invariants over random access sequences."""

from hypothesis import given, settings, strategies as st

from repro.core.detector import DetectorConfig, DualClockRaceDetector
from repro.detectors.single_clock import SingleClockDetector
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind
from repro.memory.public import MemoryCell
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import TraceReplayer

# A random access: (rank, cell offset, is_write).
access_step = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=2),
    st.booleans(),
)
access_sequences = st.lists(access_step, min_size=0, max_size=40)

WORLD = 4
OWNER = 1


def drive_detector(steps, **config_kwargs):
    """Run a raw access sequence through a fresh detector; returns (detector, cells)."""
    detector = DualClockRaceDetector(WORLD, config=DetectorConfig(**config_kwargs))
    cells = {}
    for index, (rank, offset, is_write) in enumerate(steps):
        address = GlobalAddress(OWNER, offset)
        cell = cells.setdefault(offset, MemoryCell())
        if is_write:
            detector.on_write(rank, address, cell, time=float(index))
        else:
            detector.on_read(rank, address, cell, time=float(index))
    return detector, cells


class TestDetectorInvariants:
    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_every_report_involves_a_write(self, steps):
        """Read-only concurrency is never reported (the paper's Figure 4 rule)."""
        detector, _cells = drive_detector(steps)
        for record in detector.races():
            assert record.involves_write()

    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_read_only_sequences_are_never_flagged(self, steps):
        read_only = [(rank, offset, False) for rank, offset, _ in steps]
        detector, _cells = drive_detector(read_only)
        assert detector.race_count() == 0

    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_single_process_programs_are_never_flagged(self, steps):
        """One process alone cannot race with itself."""
        solo = [(2, offset, is_write) for _rank, offset, is_write in steps]
        detector, _cells = drive_detector(solo)
        assert detector.race_count() == 0

    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_datum_clocks_dominate_every_writer_event_clock(self, steps):
        """Algorithm 5 only ever merges: the datum clock is an upper bound."""
        detector, cells = drive_detector(steps)
        for offset, cell in cells.items():
            if cell.access_clock is None:
                continue
            assert cell.access_clock.dominates(cell.write_clock)

    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_disabling_detection_reports_nothing(self, steps):
        detector, _cells = drive_detector(steps, enabled=False)
        assert detector.race_count() == 0
        assert detector.control_messages == 0

    @given(access_sequences)
    @settings(max_examples=40, deadline=None)
    def test_checks_count_matches_accesses(self, steps):
        detector, _cells = drive_detector(steps)
        assert detector.checks_performed == len(steps)


class TestDualVsSingleClock:
    @given(access_sequences)
    @settings(max_examples=40, deadline=None)
    def test_single_clock_reports_at_least_as_many_findings(self, steps):
        """The dual-clock design only removes reports (read/read ones).

        Compared against the *non-learning* single-clock baseline: with
        ``origin_learns=True`` an access merges the datum clock into the
        accessing process, and that cross-datum pollution manufactures
        happens-before edges that can suppress findings the dual-clock
        detector keeps (e.g. a reader "learning" one cell's history and
        thereby appearing ordered with an unrelated cell's writer) —
        breaking the superset relation this property asserts.
        """
        recorder = TraceRecorder(WORLD)
        for index, (rank, offset, is_write) in enumerate(steps):
            recorder.record_access(
                rank,
                GlobalAddress(OWNER, offset),
                AccessKind.WRITE if is_write else AccessKind.READ,
                time=float(index),
            )
        accesses = recorder.accesses()
        dual = TraceReplayer(WORLD).replay(accesses).race_count
        single = (
            SingleClockDetector(origin_learns=False).detect(accesses, WORLD).count()
        )
        assert single >= dual


class TestReplayEquivalence:
    @given(access_sequences)
    @settings(max_examples=40, deadline=None)
    def test_online_and_postmortem_detection_agree(self, steps):
        """The two deployments of Section V-B give identical reports."""
        detector, _cells = drive_detector(steps)
        recorder = TraceRecorder(WORLD)
        for index, (rank, offset, is_write) in enumerate(steps):
            recorder.record_access(
                rank,
                GlobalAddress(OWNER, offset),
                AccessKind.WRITE if is_write else AccessKind.READ,
                time=float(index),
            )
        replayed = TraceReplayer(WORLD).replay(recorder.accesses())
        assert replayed.race_count == detector.race_count()
        assert {r.address for r in replayed.races} == {
            r.address for r in detector.races()
        }
