"""Property-based tests for the lock table, channels and trace serialization."""

from hypothesis import given, settings, strategies as st

from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind
from repro.memory.locks import LockState, MemoryLockTable
from repro.net.channel import Channel
from repro.net.latency import UniformLatency
from repro.net.message import Message, MessageKind
from repro.sim.engine import Simulator
from repro.trace.recorder import TraceRecorder
from repro.trace.serialization import trace_from_json, trace_to_json


class TestLockProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 2)), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mutual_exclusion_and_fifo_grants(self, requests):
        """At most one holder per address, grants in request order, none lost."""
        sim = Simulator()
        table = MemoryLockTable(sim, rank=0)
        issued = []
        for requester, offset in requests:
            issued.append(table.acquire(GlobalAddress(0, offset), requester))
        sim.run()

        # Repeatedly release every granted lock until all requests were served.
        for _ in range(len(issued) + 1):
            granted_now = [r for r in issued if r.state is LockState.GRANTED]
            # Mutual exclusion: at most one granted holder per address.
            per_address = {}
            for request in granted_now:
                assert per_address.setdefault(request.address, request) is request
            if not granted_now:
                break
            for request in granted_now:
                table.release(request)
            sim.run()

        assert all(r.state is LockState.RELEASED for r in issued)
        # FIFO per address: grant times are non-decreasing in request order.
        by_address = {}
        for request in issued:
            by_address.setdefault(request.address, []).append(request)
        for address_requests in by_address.values():
            grant_times = [r.granted_at for r in address_requests]
            assert grant_times == sorted(grant_times)
        table.assert_quiescent()


class TestChannelProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_fifo_delivery_under_arbitrary_jitter(self, sizes, seed):
        sim = Simulator(seed=seed)
        channel = Channel(sim, 0, 1, UniformLatency(sim.rng, low=0.01, high=5.0))
        deliveries = []
        for index, size in enumerate(sizes):
            _event, stamped = channel.transmit(
                Message(
                    message_id=index, kind=MessageKind.PUT_DATA, source=0,
                    destination=1, payload_bytes=size,
                )
            )
            deliveries.append(stamped.deliver_time)
        assert deliveries == sorted(deliveries)
        assert all(d >= 0 for d in deliveries)
        assert channel.stats.messages == len(sizes)


class TestTraceSerializationProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),           # rank
                st.integers(0, 7),           # offset
                st.booleans(),               # write?
                st.one_of(                   # JSON-safe value
                    st.integers(-1000, 1000), st.text(max_size=8), st.booleans(), st.none()
                ),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip_preserves_every_access(self, raw):
        recorder = TraceRecorder(world_size=4)
        for rank, offset, is_write, value, time in raw:
            recorder.record_access(
                rank,
                GlobalAddress(rank, offset),
                AccessKind.WRITE if is_write else AccessKind.READ,
                value=value,
                time=time,
                symbol=f"s{offset}",
                operation="put" if is_write else "get",
            )
        text = trace_to_json(4, recorder.accesses(), recorder.operations())
        world, accesses, _operations, _syncs = trace_from_json(text)
        assert world == 4
        assert accesses == recorder.accesses()
