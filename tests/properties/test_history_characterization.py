"""Mattern's characterization theorem on generated histories.

The detection algorithm is sound and complete exactly because vector clocks
*characterize* causality: ``e < e'  iff  V(e) < V(e')`` (and hence
``e ∥ e'  iff  V(e) ∥ V(e')``).  The existing clock-law tests check the
algebra on arbitrary clock values; this module checks the theorem itself on
randomly generated *histories*: events are local steps, sends and (FIFO)
receives; the true causal order is computed independently of the clocks by
transitively closing program order plus send→receive edges, and must agree
with the clock comparison for **every** pair of events — both directions.

The clocks are maintained with the paper's :class:`MatrixClock` (principal
rows), so the matrix-clock machinery used by the online detector is what is
being characterized.
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.core.clocks import MatrixClock


def build_history(world, raw_ops):
    """Interpret *raw_ops* as a history; return (event clocks, true HB edges).

    Each op ``(a, b, deliver)`` means: if ``a == b`` a local event on ``a``;
    if ``deliver`` and a message from ``a`` to ``b`` is in flight, ``b``
    receives the oldest one (FIFO); otherwise ``a`` sends to ``b`` (the
    message stays in flight until some later op delivers it).  Undelivered
    messages at the end of the history are simply dropped — their sends are
    ordinary events.
    """
    clocks = [MatrixClock(rank, world) for rank in range(world)]
    in_flight = {}  # (src, dst) -> deque of (event_id, clock snapshot)
    event_clocks = []  # event_id -> frozen vector clock
    edges = []  # (earlier_event, later_event) direct causal edges
    last_event_of = [None] * world

    def new_event(rank, clock):
        event_id = len(event_clocks)
        event_clocks.append(clock.frozen())
        if last_event_of[rank] is not None:
            edges.append((last_event_of[rank], event_id))  # program order
        last_event_of[rank] = event_id
        return event_id

    for a_raw, b_raw, deliver in raw_ops:
        a, b = a_raw % world, b_raw % world
        if a == b:
            new_event(a, clocks[a].tick())
            continue
        queue = in_flight.get((a, b))
        if deliver and queue:
            send_id, snapshot = queue.popleft()
            clocks[b].observe_vector(snapshot, source_rank=a)
            receive_id = new_event(b, clocks[b].tick())
            edges.append((send_id, receive_id))  # message edge
        else:
            send_clock = clocks[a].tick()
            send_id = new_event(a, send_clock)
            in_flight.setdefault((a, b), deque()).append((send_id, send_clock))
    return event_clocks, edges


def transitive_closure(count, edges):
    """``reachable[i]`` = set of events causally after event ``i``."""
    successors = [[] for _ in range(count)]
    for earlier, later in edges:
        successors[earlier].append(later)
    reachable = [set() for _ in range(count)]
    # Events are created in causal-compatible (topological) order, so one
    # reverse sweep suffices.
    for event in range(count - 1, -1, -1):
        for nxt in successors[event]:
            reachable[event].add(nxt)
            reachable[event] |= reachable[nxt]
    return reachable


def clock_less(first, second):
    """Mattern's strict order on frozen clocks."""
    return all(x <= y for x, y in zip(first, second)) and first != second


histories = st.tuples(
    st.integers(min_value=2, max_value=5),
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.booleans()),
        min_size=1,
        max_size=32,
    ),
)


class TestCharacterization:
    @given(histories)
    @settings(max_examples=120, deadline=None)
    def test_happens_before_iff_clock_less(self, history):
        world, raw_ops = history
        event_clocks, edges = build_history(world, raw_ops)
        reachable = transitive_closure(len(event_clocks), edges)
        for i in range(len(event_clocks)):
            for j in range(len(event_clocks)):
                if i == j:
                    continue
                causally_before = j in reachable[i]
                clockwise_before = clock_less(event_clocks[i], event_clocks[j])
                assert causally_before == clockwise_before, (
                    f"event {i} {'<' if causally_before else '∥/>' } event {j} "
                    f"but clocks say {event_clocks[i]} vs {event_clocks[j]}"
                )

    @given(histories)
    @settings(max_examples=60, deadline=None)
    def test_concurrency_iff_clocks_incomparable(self, history):
        world, raw_ops = history
        event_clocks, edges = build_history(world, raw_ops)
        reachable = transitive_closure(len(event_clocks), edges)
        for i in range(len(event_clocks)):
            for j in range(i + 1, len(event_clocks)):
                concurrent_truth = j not in reachable[i] and i not in reachable[j]
                concurrent_clocks = not clock_less(
                    event_clocks[i], event_clocks[j]
                ) and not clock_less(event_clocks[j], event_clocks[i])
                assert concurrent_truth == concurrent_clocks

    @given(histories)
    @settings(max_examples=60, deadline=None)
    def test_event_clocks_are_distinct(self, history):
        """Every event ticks its process: no two events share a clock."""
        world, raw_ops = history
        event_clocks, _ = build_history(world, raw_ops)
        assert len(set(event_clocks)) == len(event_clocks)
