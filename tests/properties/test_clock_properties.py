"""Property-based tests (hypothesis) for the clock algebra.

Mattern's theorem is the foundation of the whole detection algorithm, so the
partial-order laws of vector clocks and the lattice laws of the merge
operation are checked over randomly generated clocks rather than hand-picked
examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clocks import MatrixClock, VectorClock
from repro.core.comparator import ClockOrdering, compare_clocks, concurrent, max_clock, ordering

# Clocks over 1..6 processes with entries in 0..20.
clock_entries = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.lists(st.integers(min_value=0, max_value=20), min_size=n, max_size=n)
)


def paired_entries(max_size=6):
    """Two entry lists of the same length."""
    return st.integers(min_value=1, max_value=max_size).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 20), min_size=n, max_size=n),
            st.lists(st.integers(0, 20), min_size=n, max_size=n),
        )
    )


def triple_entries(max_size=5):
    return st.integers(min_value=1, max_value=max_size).flatmap(
        lambda n: st.tuples(
            *(st.lists(st.integers(0, 20), min_size=n, max_size=n) for _ in range(3))
        )
    )


class TestPartialOrderLaws:
    @given(clock_entries)
    def test_happens_before_is_irreflexive(self, entries):
        clock = VectorClock(entries)
        assert not clock.happens_before(clock)

    @given(paired_entries())
    def test_happens_before_is_antisymmetric(self, pair):
        a, b = VectorClock(pair[0]), VectorClock(pair[1])
        assert not (a.happens_before(b) and b.happens_before(a))

    @given(triple_entries())
    def test_happens_before_is_transitive(self, triple):
        a, b, c = (VectorClock(e) for e in triple)
        if a.happens_before(b) and b.happens_before(c):
            assert a.happens_before(c)

    @given(paired_entries())
    def test_trichotomy_of_ordering_classification(self, pair):
        a, b = VectorClock(pair[0]), VectorClock(pair[1])
        relation = ordering(a, b)
        # Exactly one classification, and it is consistent with the primitives.
        if relation is ClockOrdering.EQUAL:
            assert a == b
        elif relation is ClockOrdering.BEFORE:
            assert compare_clocks(a, b) and not compare_clocks(b, a)
        elif relation is ClockOrdering.AFTER:
            assert compare_clocks(b, a) and not compare_clocks(a, b)
        else:
            assert concurrent(a, b)

    @given(paired_entries())
    def test_concurrency_is_symmetric(self, pair):
        a, b = VectorClock(pair[0]), VectorClock(pair[1])
        assert concurrent(a, b) == concurrent(b, a)


class TestMergeLaws:
    @given(paired_entries())
    def test_merge_is_commutative(self, pair):
        assert max_clock(pair[0], pair[1]) == max_clock(pair[1], pair[0])

    @given(triple_entries())
    def test_merge_is_associative(self, triple):
        a, b, c = triple
        assert max_clock(max_clock(a, b), c) == max_clock(a, max_clock(b, c))

    @given(clock_entries)
    def test_merge_is_idempotent(self, entries):
        assert max_clock(entries, entries) == VectorClock(entries)

    @given(paired_entries())
    def test_merge_is_an_upper_bound(self, pair):
        merged = max_clock(pair[0], pair[1])
        assert merged.dominates(pair[0])
        assert merged.dominates(pair[1])

    @given(paired_entries())
    def test_merge_is_the_least_upper_bound(self, pair):
        merged = max_clock(pair[0], pair[1])
        entries = np.maximum(np.array(pair[0]), np.array(pair[1]))
        assert merged == VectorClock(entries)

    @given(clock_entries)
    def test_zero_is_the_identity(self, entries):
        zero = VectorClock.zeros(len(entries))
        assert max_clock(zero, entries) == VectorClock(entries)


class TestTickProperties:
    @given(clock_entries, st.integers(min_value=0, max_value=5))
    def test_tick_strictly_advances(self, entries, rank_seed):
        clock = VectorClock(entries)
        rank = rank_seed % clock.size
        before = clock.copy()
        clock.tick(rank)
        assert before.happens_before(clock)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=30))
    def test_matrix_clock_principal_reflects_all_local_events(self, size, events):
        clock = MatrixClock(rank=0, size=size)
        for _ in range(events):
            clock.tick()
        assert clock.local_component() == events
        assert clock.principal().component(0) == events


class TestSimulatedCausality:
    """Clocks driven by a random message history characterize causality exactly."""

    @given(
        st.integers(min_value=2, max_value=5),
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=40
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_message_chain_implies_happens_before(self, world, raw_events, rng):
        """Sending a message always makes the send happen-before the receive."""
        clocks = [VectorClock.zeros(world) for _ in range(world)]
        snapshots = []
        for src_raw, dst_raw in raw_events:
            src, dst = src_raw % world, dst_raw % world
            if src == dst:
                clocks[src].tick(src)
                continue
            clocks[src].tick(src)
            send_snapshot = clocks[src].copy()
            clocks[dst].merge_in_place(send_snapshot)
            clocks[dst].tick(dst)
            snapshots.append((send_snapshot, clocks[dst].copy()))
        for send_clock, receive_clock in snapshots:
            assert send_clock.happens_before(receive_clock)
