"""Unit tests for named reproducible random streams."""

import pytest

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream_same_draws(self):
        a = RandomStreams(seed=42)
        b = RandomStreams(seed=42)
        assert [a.uniform("net", 0, 1) for _ in range(10)] == [
            b.uniform("net", 0, 1) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1)
        b = RandomStreams(seed=2)
        assert [a.uniform("net", 0, 1) for _ in range(5)] != [
            b.uniform("net", 0, 1) for _ in range(5)
        ]

    def test_streams_are_independent_of_creation_order(self):
        # Drawing from an extra stream first must not change another stream.
        a = RandomStreams(seed=3)
        a.uniform("other", 0, 1)
        from_a = [a.uniform("net", 0, 1) for _ in range(5)]

        b = RandomStreams(seed=3)
        from_b = [b.uniform("net", 0, 1) for _ in range(5)]
        assert from_a == from_b

    def test_different_names_give_different_sequences(self):
        streams = RandomStreams(seed=0)
        xs = [streams.uniform("a", 0, 1) for _ in range(5)]
        ys = [streams.uniform("b", 0, 1) for _ in range(5)]
        assert xs != ys

    def test_uniform_respects_bounds(self):
        streams = RandomStreams(seed=0)
        for _ in range(100):
            value = streams.uniform("bounded", 2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_uniform_rejects_reversed_bounds(self):
        with pytest.raises(ValueError):
            RandomStreams(0).uniform("x", 3.0, 2.0)

    def test_exponential_positive_and_mean_checked(self):
        streams = RandomStreams(seed=0)
        assert streams.exponential("e", 2.0) >= 0
        with pytest.raises(ValueError):
            streams.exponential("e", 0.0)

    def test_integers_in_range(self):
        streams = RandomStreams(seed=0)
        draws = {streams.integers("i", 0, 4) for _ in range(200)}
        assert draws <= {0, 1, 2, 3}
        assert len(draws) > 1

    def test_choice_picks_from_options(self):
        streams = RandomStreams(seed=0)
        for _ in range(20):
            assert streams.choice("c", ["x", "y", "z"]) in {"x", "y", "z"}

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomStreams(0).choice("c", [])

    def test_invalid_stream_name_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams(0).stream("")

    def test_names_lists_created_streams(self):
        streams = RandomStreams(seed=0)
        streams.stream("zeta")
        streams.stream("alpha")
        assert streams.names() == ["alpha", "zeta"]
