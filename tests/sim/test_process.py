"""Unit tests for generator-based simulated processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import Interrupt, SimulationError
from repro.sim.process import Process, ProcessState


class TestProcessExecution:
    def test_process_advances_through_timeouts(self):
        sim = Simulator()
        milestones = []

        def program():
            milestones.append(("start", sim.now))
            yield sim.timeout(2.0)
            milestones.append(("middle", sim.now))
            yield sim.timeout(3.0)
            milestones.append(("end", sim.now))
            return "finished"

        proc = sim.process(program())
        sim.run()
        assert milestones == [("start", 0.0), ("middle", 2.0), ("end", 5.0)]
        assert proc.state is ProcessState.FINISHED
        assert proc.value == "finished"

    def test_process_receives_event_values(self):
        sim = Simulator()
        received = []

        def program():
            value = yield sim.timeout(1.0, value="hello")
            received.append(value)

        sim.process(program())
        sim.run()
        assert received == ["hello"]

    def test_yield_from_composes_generators(self):
        sim = Simulator()
        log = []

        def inner():
            yield sim.timeout(1.0)
            return 21

        def outer():
            value = yield from inner()
            log.append(value * 2)

        sim.process(outer())
        sim.run()
        assert log == [42]

    def test_process_is_waitable_event(self):
        sim = Simulator()
        order = []

        def worker():
            yield sim.timeout(4.0)
            order.append("worker done")
            return "result"

        def waiter(worker_proc):
            value = yield worker_proc
            order.append(f"waiter saw {value}")

        worker_proc = sim.process(worker())
        sim.process(waiter(worker_proc))
        sim.run()
        assert order == ["worker done", "waiter saw result"]

    def test_two_processes_interleave_by_time(self):
        sim = Simulator()
        order = []

        def make(name, delay):
            def program():
                for step in range(3):
                    yield sim.timeout(delay)
                    order.append((name, sim.now))
            return program

        sim.process(make("fast", 1.0)())
        sim.process(make("slow", 2.5)())
        sim.run()
        assert order == [
            ("fast", 1.0), ("fast", 2.0), ("slow", 2.5),
            ("fast", 3.0), ("slow", 5.0), ("slow", 7.5),
        ]


class TestProcessErrors:
    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            Process(sim, lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_fails_process(self):
        sim = Simulator()

        def program():
            yield "not an event"

        proc = sim.process(program())
        with pytest.raises(SimulationError):
            sim.run()
        assert proc.state is ProcessState.FAILED

    def test_exception_in_process_surfaces_from_run(self):
        sim = Simulator()

        def program():
            yield sim.timeout(1.0)
            raise ValueError("application bug")

        sim.process(program(), name="buggy")
        with pytest.raises(SimulationError, match="buggy"):
            sim.run()
        assert len(sim.failures) == 1

    def test_run_can_suppress_process_errors(self):
        sim = Simulator()

        def program():
            yield sim.timeout(1.0)
            raise ValueError("bug")

        sim.process(program())
        sim.run(raise_process_errors=False)
        assert len(sim.failures) == 1

    def test_failed_event_propagates_into_generator(self):
        sim = Simulator()
        caught = []

        def program():
            bad = sim.event()
            sim.call_after(1.0, lambda: bad.fail(RuntimeError("remote failure")))
            try:
                yield bad
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(program())
        sim.run()
        assert caught == ["remote failure"]


class TestInterrupt:
    def test_interrupt_wakes_waiting_process(self):
        sim = Simulator()
        outcome = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
                outcome.append("slept fully")
            except Interrupt as interrupt:
                outcome.append(("interrupted", interrupt.cause, sim.now))

        proc = sim.process(sleeper())
        sim.call_after(3.0, lambda: proc.interrupt("wake up"))
        sim.run()
        assert outcome == [("interrupted", "wake up", 3.0)]

    def test_interrupting_finished_process_is_error(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_all_finished_reports_status(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        sim.process(quick())
        assert not sim.all_finished()
        sim.run()
        assert sim.all_finished()
