"""Unit tests for the discrete-event kernel: events, timeouts, conditions, engine."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, SimulationError, Timeout


class TestEventLifecycle:
    def test_pending_event_rejects_value_access(self):
        sim = Simulator()
        event = sim.event()
        assert not event.triggered
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_sets_value_and_runs_callbacks(self):
        sim = Simulator()
        event = sim.event()
        seen = []
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed("payload")
        sim.run()
        assert seen == ["payload"]
        assert event.ok and event.processed

    def test_double_trigger_is_an_error(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("late"))

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")


class TestTimeouts:
    def test_timeout_fires_at_delay(self):
        sim = Simulator()
        fired_at = []
        timeout = sim.timeout(5.0, value="done")
        timeout.callbacks.append(lambda ev: fired_at.append((sim.now, ev.value)))
        sim.run()
        assert fired_at == [(5.0, "done")]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeouts_cannot_be_triggered_manually(self):
        sim = Simulator()
        timeout = sim.timeout(1.0)
        with pytest.raises(SimulationError):
            timeout.succeed()

    def test_timeouts_fire_in_time_order(self):
        sim = Simulator()
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay).callbacks.append(
                lambda ev, d=delay: order.append(d)
            )
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_equal_times_preserve_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.timeout(1.0).callbacks.append(lambda ev, l=label: order.append(l))
        sim.run()
        assert order == ["a", "b", "c"]


class TestConditions:
    def test_all_of_waits_for_every_child(self):
        sim = Simulator()
        children = [sim.timeout(1.0, value=1), sim.timeout(3.0, value=3)]
        condition = sim.all_of(children)
        done = []
        condition.callbacks.append(lambda ev: done.append(sim.now))
        sim.run()
        assert done == [3.0]
        assert set(condition.value.values()) == {1, 3}

    def test_any_of_fires_on_first_child(self):
        sim = Simulator()
        children = [sim.timeout(1.0, value="fast"), sim.timeout(3.0, value="slow")]
        condition = sim.any_of(children)
        done = []
        condition.callbacks.append(lambda ev: done.append((sim.now, list(ev.value.values()))))
        sim.run()
        assert done == [(1.0, ["fast"])]

    def test_empty_all_of_is_immediately_triggered(self):
        sim = Simulator()
        condition = sim.all_of([])
        assert condition.triggered
        assert condition.value == {}

    def test_all_of_fails_when_child_fails(self):
        sim = Simulator()
        good = sim.timeout(1.0)
        bad = sim.event()
        condition = sim.all_of([good, bad])
        bad.fail(RuntimeError("boom"))
        sim.run()
        assert condition.triggered and not condition.ok
        assert isinstance(condition.value, RuntimeError)


class TestEngine:
    def test_now_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_until_stops_the_clock(self):
        sim = Simulator()
        sim.timeout(100.0)
        stopped = sim.run(until=10.0)
        assert stopped == 10.0
        assert sim.now == 10.0

    def test_run_max_events_limits_processing(self):
        sim = Simulator()
        for _ in range(10):
            sim.timeout(1.0)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_step_on_empty_queue_is_an_error(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_call_after_runs_callback_at_time(self):
        sim = Simulator()
        seen = []
        sim.call_after(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_call_at_rejects_past_times(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_peek_reports_next_event_time(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0

    def test_deterministic_given_seed(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            values = [sim.rng.uniform("latency", 0, 1) for _ in range(5)]
            return values

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)
