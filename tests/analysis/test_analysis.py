"""Unit tests for accuracy metrics, overhead accounting and report rendering."""

import math

import pytest

from repro.analysis.metrics import ConfusionCounts, DetectorScore, score_against_labels
from repro.analysis.overhead import (
    clock_storage_model,
    compare_runs,
    detection_overhead_for,
)
from repro.analysis.reporting import format_race_report, format_run_summary, format_table
from repro.core.detector import DetectorConfig
from repro.runtime.runtime import DSMRuntime, RuntimeConfig


class TestConfusionCounts:
    def test_counts_and_rates(self):
        counts = ConfusionCounts()
        counts.add(True, True)    # TP
        counts.add(True, False)   # FP
        counts.add(False, True)   # FN
        counts.add(False, False)  # TN
        assert counts.true_positives == counts.false_positives == 1
        assert counts.precision == 0.5
        assert counts.recall == 0.5
        assert counts.accuracy == 0.5
        assert counts.f1 == pytest.approx(0.5)

    def test_degenerate_cases(self):
        empty = ConfusionCounts()
        assert empty.precision == 1.0 and empty.recall == 1.0 and empty.accuracy == 1.0
        only_tn = ConfusionCounts(true_negatives=5)
        assert only_tn.f1 == pytest.approx(2 * 1 * 1 / 2)


class TestScoring:
    def test_perfect_detector_scores_one(self):
        score = score_against_labels(
            "perfect",
            flagged_by_program={"p1": {"x"}, "p2": set()},
            labels_by_program={"p1": {"x"}, "p2": set()},
            symbols_by_program={"p1": {"x", "y"}, "p2": {"z"}},
        )
        assert score.program_level.accuracy == 1.0
        assert score.symbol_level.precision == 1.0
        assert score.symbol_level.recall == 1.0

    def test_over_reporting_hurts_precision_not_recall(self):
        score = score_against_labels(
            "noisy",
            flagged_by_program={"p1": {"x", "y"}},
            labels_by_program={"p1": {"x"}},
            symbols_by_program={"p1": {"x", "y"}},
        )
        assert score.symbol_level.recall == 1.0
        assert score.symbol_level.precision == 0.5

    def test_under_reporting_hurts_recall(self):
        score = score_against_labels(
            "blind",
            flagged_by_program={"p1": set()},
            labels_by_program={"p1": {"x"}},
            symbols_by_program={"p1": {"x", "y"}},
        )
        assert score.symbol_level.recall == 0.0
        assert score.program_level.accuracy == 0.0

    def test_as_row_shape(self):
        score = DetectorScore("d")
        row = score.as_row()
        assert row[0] == "d" and len(row) == 5


class TestClockStorageModel:
    def test_dual_is_twice_single_for_datum_clocks(self):
        """Section IV-D: the dual-clock design doubles the per-datum storage."""
        model = clock_storage_model(world_size=8, shared_data=100)
        assert model.entries_per_datum_dual == 16
        assert model.entries_per_datum_single == 8
        assert model.dual_over_single_ratio == 2.0

    def test_storage_grows_linearly_with_n_per_datum(self):
        """Section IV-C: clocks cannot be smaller than n."""
        small = clock_storage_model(4, 10)
        large = clock_storage_model(8, 10)
        assert large.entries_per_datum_dual == 2 * small.entries_per_datum_dual

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            clock_storage_model(0, 10)


def _writer_runtime(enabled: bool, seed: int = 0) -> DSMRuntime:
    config = RuntimeConfig(
        world_size=3, seed=seed, detector=DetectorConfig(enabled=enabled)
    )
    runtime = DSMRuntime(config)
    runtime.declare_scalar("x", owner=1, initial=0)

    def writer(api):
        yield from api.put("x", api.rank)
        yield from api.get("x")

    def idle(api):
        yield from api.compute(0.0)

    runtime.set_program(0, writer)
    runtime.set_program(1, idle)
    runtime.set_program(2, writer)
    return runtime


class TestOverheadComparison:
    def test_detection_adds_messages_and_storage(self):
        baseline = _writer_runtime(enabled=False).run()
        instrumented = _writer_runtime(enabled=True).run()
        comparison = compare_runs(baseline, instrumented)
        assert comparison.message_overhead_ratio > 1.0
        assert comparison.detection_messages > 0
        assert comparison.clock_storage_entries > 0
        assert comparison.extra_messages_per_access > 0
        as_dict = comparison.as_dict()
        assert as_dict["world_size"] == 3

    def test_world_size_mismatch_rejected(self):
        baseline = _writer_runtime(enabled=False).run()
        other = DSMRuntime(RuntimeConfig(world_size=2))
        other.set_spmd_program(lambda api: api.compute(0.0))
        with pytest.raises(ValueError):
            compare_runs(baseline, other.run())

    def test_single_run_overhead_summary(self):
        result = _writer_runtime(enabled=True).run()
        summary = detection_overhead_for(result)
        assert summary["remote_accesses"] == 4
        assert summary["detection_messages_per_access"] > 0
        assert summary["clock_storage_bytes"] == summary["clock_storage_entries"] * 8


class TestReporting:
    def test_format_table_alignment_and_title(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All rows share the same width.
        assert len(set(len(line) for line in lines[2:])) == 1

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_run_summary_and_race_report_render(self):
        result = _writer_runtime(enabled=True).run()
        summary = format_run_summary(result)
        assert "race signals" in summary
        report = format_race_report(result)
        assert "x" in report or "no race" in report

    def test_empty_race_report(self):
        result = _writer_runtime(enabled=False).run()
        assert "no race" in format_race_report(result)
