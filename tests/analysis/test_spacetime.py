"""Tests for the ASCII space-time diagram renderer."""

import pytest

from repro.analysis.spacetime import render_run, render_spacetime
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind
from repro.trace.recorder import TraceRecorder
from repro.workloads.figures import figure5a_concurrent_puts


class TestRenderSpacetime:
    def make_trace(self):
        recorder = TraceRecorder(3)
        recorder.record_access(
            0, GlobalAddress(1, 0), AccessKind.WRITE, value=1, time=1.0, symbol="a", operation="put"
        )
        recorder.record_access(
            2, GlobalAddress(1, 0), AccessKind.READ, value=1, time=2.5, symbol="a", operation="get"
        )
        recorder.record_sync([0, 1, 2], time=5.0)
        recorder.record_access(
            1, GlobalAddress(1, 0), AccessKind.READ, value=1, time=6.0, symbol="a", operation="local_read"
        )
        return recorder

    def test_one_row_per_event_plus_header(self):
        recorder = self.make_trace()
        text = render_spacetime(3, recorder.accesses(), recorder.syncs())
        lines = text.splitlines()
        assert len(lines) == 2 + 4  # header + ruler + 3 accesses + 1 barrier
        assert "P0" in lines[0] and "P2" in lines[0]
        assert "barrier" in text
        assert "W:a" in text and "R:a" in text

    def test_events_appear_in_time_order(self):
        recorder = self.make_trace()
        text = render_spacetime(3, recorder.accesses(), recorder.syncs())
        assert text.index("W:a") < text.index("barrier") < text.index("local_read")

    def test_race_marker(self):
        runtime = figure5a_concurrent_puts()
        result = runtime.run()
        text = render_run(runtime, result)
        assert "*RACE*" in text

    def test_truncation_notice(self):
        recorder = TraceRecorder(2)
        for step in range(30):
            recorder.record_access(
                0, GlobalAddress(0, 0), AccessKind.WRITE, time=float(step), symbol="x"
            )
        text = render_spacetime(2, recorder.accesses(), max_rows=10)
        assert "more events" in text
        assert len(text.splitlines()) == 2 + 10 + 1

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            render_spacetime(0, [])
