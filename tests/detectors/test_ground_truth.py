"""Unit tests for the seed-varying ground-truth oracle."""

import pytest

from repro.detectors.ground_truth import SeedVaryingOracle
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.producer_consumer import ProducerConsumerWorkload
from repro.workloads.reduction import OneSidedReductionWorkload


def racy_factory(seed):
    """Two ranks write different values to the same cell; timing decides the winner."""
    runtime = DSMRuntime(RuntimeConfig(world_size=3, seed=seed, latency="uniform"))
    runtime.declare_scalar("x", owner=1, initial=0)

    def writer(api):
        rng = runtime.sim.rng.stream(f"test.racy.P{api.rank}")
        yield from api.compute(float(rng.uniform()) * 2.0)
        yield from api.put("x", api.rank)

    def idle(api):
        yield from api.compute(0.0)

    runtime.set_program(0, writer)
    runtime.set_program(1, idle)
    runtime.set_program(2, writer)
    return runtime


def clean_factory(seed):
    """Single writer: every interleaving produces the same outcome."""
    runtime = DSMRuntime(RuntimeConfig(world_size=2, seed=seed, latency="uniform"))
    runtime.declare_scalar("x", owner=1, initial=0)

    def writer(api):
        yield from api.put("x", "only-value")

    def idle(api):
        yield from api.compute(0.0)

    runtime.set_program(0, writer)
    runtime.set_program(1, idle)
    return runtime


class TestSeedVaryingOracle:
    def test_detects_divergent_final_values(self):
        truth = SeedVaryingOracle(racy_factory, seeds=range(6)).evaluate()
        assert truth.racy
        assert truth.is_racy_symbol("x")
        assert len(truth.racy_addresses) >= 1

    def test_single_writer_is_clean(self):
        truth = SeedVaryingOracle(clean_factory, seeds=range(4)).evaluate()
        assert not truth.racy
        assert not truth.is_racy_symbol("x")

    def test_runs_are_kept_per_seed(self):
        oracle = SeedVaryingOracle(clean_factory, seeds=(0, 1))
        truth = oracle.evaluate()
        assert set(truth.runs) == {0, 1}
        assert set(truth.final_values_by_seed) == {0, 1}

    def test_requires_at_least_one_seed(self):
        with pytest.raises(ValueError):
            SeedVaryingOracle(clean_factory, seeds=())

    def test_unsynchronized_reduction_diverges(self):
        workload = OneSidedReductionWorkload(world_size=4, synchronize=False)
        truth = SeedVaryingOracle(workload.factory(), seeds=range(5)).evaluate()
        # Either the reduced total or the read sequences must differ somewhere.
        assert truth.racy

    def test_synchronized_reduction_is_stable(self):
        workload = OneSidedReductionWorkload(world_size=4, synchronize=True)
        truth = SeedVaryingOracle(workload.factory(), seeds=range(4)).evaluate()
        totals = {run.per_rank_private[0].get("total") for run in truth.runs.values()}
        assert totals == {workload.expected_sum()}

    def test_oracle_and_detector_agree_on_producer_consumer(self):
        # A consumer delay in the middle of the production window lets the
        # seed-varying oracle actually observe the two outcomes of the race.
        racy = ProducerConsumerWorkload(synchronized=False, consumer_delay=15.0)
        truth = SeedVaryingOracle(racy.factory(), seeds=range(8)).evaluate()
        assert truth.racy
        # On-the-fly detection only sees the interleaving that actually ran:
        # in interleavings where the consumer's reads land before the writes
        # arrive the detector flags them; in the others the reception event
        # orders the pair.  At least one evaluated interleaving must have
        # manifested the race to the detector.
        assert any(run.race_count > 0 for run in truth.runs.values())
