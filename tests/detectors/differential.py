"""Differential-testing harness for the epoch fast path.

The epoch fast path (``DetectorConfig.epochs`` / ``RuntimeConfig.
detector_epochs``) is an *exact* shortcut: by construction it changes which
code path decides a check, never what the check decides or which clock
contents the merges produce.  This module is the machinery that proves the
claim instead of asserting it — every helper runs the same program through
both modes and diffs what must be byte-identical:

* **verdicts** — the full race-record list, every field including the
  clock snapshots and the detail string;
* **decision logs** — the schedule-replay recipe of every explored
  schedule, entry for entry;
* **``RunResult.metrics``** — the canonical metrics-registry snapshot
  (the epoch path books no registry counters, so even the observability
  payload cannot drift);
* clock *contents* — per-cell access/write clocks and per-rank process
  clocks at end of run;
* the detection profile's ``checks``, ``joins`` and race counts (only
  ``compares`` may drop, traded for ``epoch_hits``).

Byte-for-byte means exactly that: digests are compared as
``json.dumps(..., sort_keys=True)`` strings, so an ordering difference or
a numpy scalar leaking into a payload fails just as loudly as a wrong
verdict.

The one hazard the harness is built around: ``RuntimeConfig.replace()`` is
shallow, so runtimes derived from one config object *share* the
``DetectorConfig`` instance that ``set_detector_epochs`` mutates.  Every
helper therefore builds a fresh runtime per mode (``build(seed)``) and
flips the knob on that runtime alone.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.detector import DualClockRaceDetector
from repro.core.races import RaceRecord
from repro.explore.runner import Explorer, ExplorationResult
from repro.runtime.runtime import DSMRuntime, RunResult

#: Profile fields that MUST match between modes.  ``compares`` and
#: ``epoch_hits`` are the two the fast path intentionally trades against
#: each other; everything else is pinned.
PINNED_PROFILE_FIELDS = ("checks", "joins")

MODES = ("on", "off")


# -- digests -------------------------------------------------------------------------


def race_digest(record: RaceRecord) -> Dict[str, object]:
    """Every observable field of one race record, JSON-safe."""
    return {
        "address": str(record.address),
        "symbol": record.symbol,
        "current_rank": record.current_rank,
        "current_kind": record.current_kind.value,
        "current_clock": [int(c) for c in record.current_clock],
        "previous_rank": record.previous_rank,
        "previous_kind": record.previous_kind.value,
        "previous_clock": [int(c) for c in record.previous_clock],
        "time": record.time,
        "operation": record.operation,
        "detail": record.detail,
    }


def run_result_digest(result: RunResult) -> str:
    """The byte-for-byte comparable view of one run.

    Everything except the two profile fields the fast path is *allowed*
    to change; serialized canonically so the comparison is a string
    equality.
    """
    pinned_profile = {
        bucket: {f: counts[f] for f in PINNED_PROFILE_FIELDS}
        for bucket, counts in sorted(result.detection_profile.items())
    }
    payload = {
        "races": [race_digest(r) for r in result.races.records()],
        "metrics": result.metrics,
        "final_shared_values": {
            symbol: [repr(v) for v in values]
            for symbol, values in sorted(result.final_shared_values.items())
        },
        "elapsed_sim_time": result.elapsed_sim_time,
        "detection_profile_pinned": pinned_profile,
    }
    return json.dumps(payload, sort_keys=True)


def detector_state_digest(detector: DualClockRaceDetector) -> str:
    """End-state digest of a raw detector: clocks, verdicts, pinned profile.

    Used by the property tests that drive two detectors directly (no
    runtime): cell clocks live on the caller's ``MemoryCell`` objects, so
    only process clocks, races and profile are captured here.
    """
    payload = {
        "process_clocks": {
            rank: list(detector.current_clock(rank).frozen())
            for rank in range(detector.world_size)
        },
        "races": [race_digest(r) for r in detector.report.records()],
        "profile_pinned": {
            bucket: {f: counts[f] for f in PINNED_PROFILE_FIELDS}
            for bucket, counts in sorted(detector.profiler.snapshot().items())
        },
        "race_counts": len(detector.report),
    }
    return json.dumps(payload, sort_keys=True)


def exploration_digest(result: ExplorationResult) -> str:
    """Byte-for-byte view of a whole exploration, decision logs included.

    ``ExplorationResult.as_dict()`` already carries verdicts, fingerprints
    and per-schedule ``metrics``; the decision logs and observable
    behaviour are appended explicitly because the campaign payload only
    summarizes them.
    """
    payload = result.as_dict()
    payload["decision_logs"] = [o.decisions.to_jsonable() for o in result.outcomes]
    payload["final_values"] = [
        {s: [repr(v) for v in vals] for s, vals in sorted(o.final_values.items())}
        for o in result.outcomes
    ]
    payload["read_values"] = [
        {f"{sym}[{off}]": list(vals) for (sym, off), vals in sorted(o.read_values.items())}
        for o in result.outcomes
    ]
    return json.dumps(payload, sort_keys=True)


# -- runners -------------------------------------------------------------------------


def run_in_mode(
    build: Callable[[int], DSMRuntime], seed: int, mode: str
) -> RunResult:
    """Build a fresh runtime, pin the epoch mode, run it."""
    runtime = build(seed)
    runtime.set_detector_epochs(mode)
    return runtime.run()


def run_differential(
    build: Callable[[int], DSMRuntime], seed: int = 0
) -> Tuple[RunResult, RunResult]:
    """One run per mode; asserts the byte-identical contract, returns both."""
    on = run_in_mode(build, seed, "on")
    off = run_in_mode(build, seed, "off")
    assert run_result_digest(on) == run_result_digest(off), (
        f"epoch fast path changed an observable (seed={seed})"
    )
    return on, off


def explore_in_mode(
    build: Callable[[int], DSMRuntime],
    mode: str,
    seed: int = 0,
    budget: int = 4,
    offline_detectors=None,
) -> ExplorationResult:
    """Explore the schedule space with every runtime pinned to *mode*."""
    explorer = Explorer(
        build,
        seed=seed,
        offline_detectors=offline_detectors,
        configure=lambda runtime: runtime.set_detector_epochs(mode),
    )
    return explorer.explore_fuzzed(budget)


def explore_differential(
    build: Callable[[int], DSMRuntime],
    seed: int = 0,
    budget: int = 4,
    offline_detectors=None,
) -> Tuple[ExplorationResult, ExplorationResult]:
    """The schedule-space differential: every schedule through both modes.

    Fuzz seeds derive deterministically from the exploration seed, so both
    explorations replay the *same* schedules; the assertion then covers
    verdicts, decision logs, fingerprints, metrics, final values and read
    multisets of every schedule at once.
    """
    on = explore_in_mode(build, "on", seed=seed, budget=budget,
                         offline_detectors=offline_detectors)
    off = explore_in_mode(build, "off", seed=seed, budget=budget,
                          offline_detectors=offline_detectors)
    assert exploration_digest(on) == exploration_digest(off), (
        f"epoch fast path changed an explored schedule (seed={seed})"
    )
    return on, off


def profile_compares(result: RunResult) -> Dict[str, int]:
    """Per-bucket full-vector compare counts of one run."""
    return {
        bucket: counts["compares"]
        for bucket, counts in result.detection_profile.items()
    }


def total_compares(result: RunResult) -> int:
    """Full-vector compares summed over every check type."""
    return sum(profile_compares(result).values())


def total_epoch_hits(result: RunResult) -> int:
    """O(1) epoch probes summed over every check type."""
    return sum(
        counts["epoch_hits"] for counts in result.detection_profile.values()
    )
