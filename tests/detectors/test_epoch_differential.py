"""Property-based differential tests for the epoch fast path (satellite of
the FastTrack-style optimisation).

Two layers of evidence that ``DetectorConfig.epochs`` is an exact shortcut:

* **raw detectors** — hypothesis-generated access sequences (read/write/rmw
  × live/carried × owner-tick × explicit sync) are replayed through two
  ``DualClockRaceDetector`` instances that differ only in the knob.  The
  end states must agree on every observable: race records field-for-field,
  per-cell access/write clock contents, per-rank process clocks, and the
  detection profile's ``checks``/``joins``/race counts.  Only ``compares``
  may differ — and then only downward, traded one-for-one against
  ``epoch_hits``.

* **whole runtimes** — the labelled pattern corpus runs through the
  runtime-level harness (``tests/detectors/differential.py``), whose digest
  covers ``RunResult.metrics`` byte-for-byte, and through schedule-space
  exploration so verdicts and decision logs are diffed across many
  interleavings, not just the uncontrolled one.  A knob-matrix test crosses
  the epoch modes with clock transports, wire formats and CQ moderation —
  the fast path must be invisible under every combination.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detector import (
    ComparisonMode,
    DetectorConfig,
    DualClockRaceDetector,
    WriteCheckMode,
)
from repro.memory.address import GlobalAddress
from repro.memory.public import MemoryCell
from repro.workloads.racy_patterns import pattern_corpus, rmw_pattern_corpus

from tests.detectors.differential import (
    detector_state_digest,
    explore_differential,
    run_differential,
    run_in_mode,
    total_compares,
    total_epoch_hits,
)

WORLD = 3
ADDRESSES = (GlobalAddress(0, 0), GlobalAddress(0, 1), GlobalAddress(1, 0))

# One step of a generated history: an access (live or carried), a purely
# local tick, an explicit synchronization, or taking the post-time snapshot
# a later carried access will use.  ``arg`` is the address index for
# accesses and the partner rank for syncs.
OPS = (
    "write", "read", "rmw",
    "carried-write", "carried-read", "carried-rmw",
    "tick", "sync", "snap",
)

op_sequences = st.lists(
    st.tuples(
        st.sampled_from(OPS),
        st.integers(min_value=0, max_value=WORLD - 1),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=40,
)


def replay(ops, epochs, **config_kwargs):
    """Drive one fresh detector through *ops*; return (detector, cells).

    Carried accesses use the origin's most recent ``snap`` snapshot as the
    post-time clock (or its current clock when it never snapped) — both
    replicas compute it from their own state, so the inputs stay identical
    exactly as long as the clock contents do, which is the invariant under
    test.
    """
    detector = DualClockRaceDetector(
        WORLD, DetectorConfig(epochs=epochs, **config_kwargs)
    )
    cells = {address: MemoryCell() for address in ADDRESSES}
    snapshots = {}
    for op, rank, arg in ops:
        if op == "tick":
            detector.local_event(rank)
            continue
        if op == "sync":
            if arg != rank:
                detector.transfer_clock(rank, arg)
            continue
        if op == "snap":
            snapshots[rank] = detector.current_clock(rank)
            continue
        address = ADDRESSES[arg]
        cell = cells[address]
        symbol = f"s{arg}"
        if op == "write":
            detector.on_write(rank, address, cell, symbol=symbol)
        elif op == "read":
            detector.on_read(rank, address, cell, symbol=symbol)
        elif op == "rmw":
            detector.on_rmw(rank, address, cell, symbol=symbol)
        else:
            carried = snapshots.get(rank, detector.current_clock(rank))
            if op == "carried-write":
                detector.on_write(
                    rank, address, cell, carried_clock=carried, owner_event=True
                )
            elif op == "carried-read":
                detector.on_read(rank, address, cell, carried_clock=carried)
            else:
                detector.on_rmw(rank, address, cell, carried_clock=carried)
    return detector, cells


def cell_clock_digest(cells):
    return {
        str(address): (
            cell.access_clock.frozen() if cell.access_clock is not None else None,
            cell.write_clock.frozen() if cell.write_clock is not None else None,
        )
        for address, cell in cells.items()
    }


def assert_differential(ops, **config_kwargs):
    """The core property: both replicas end byte-identical everywhere the
    fast path claims exactness, and the fast path never compares more."""
    fast, fast_cells = replay(ops, epochs=True, **config_kwargs)
    slow, slow_cells = replay(ops, epochs=False, **config_kwargs)
    assert detector_state_digest(fast) == detector_state_digest(slow)
    assert cell_clock_digest(fast_cells) == cell_clock_digest(slow_cells)
    fast_profile = fast.profiler.totals()
    slow_profile = slow.profiler.totals()
    assert slow_profile["epoch_hits"] == 0
    assert fast_profile["checks"] == slow_profile["checks"]
    assert fast_profile["joins"] == slow_profile["joins"]
    # Every check the fast path decided by a probe is a check the slow path
    # decided by full compares; nothing is decided twice or not at all.
    assert fast_profile["compares"] <= slow_profile["compares"]
    if fast_profile["epoch_hits"]:
        assert fast_profile["compares"] < slow_profile["compares"]
    return fast, slow


class TestRawDetectorDifferential:
    @given(op_sequences)
    @settings(max_examples=120, deadline=None)
    def test_default_config(self, ops):
        assert_differential(ops)

    @given(op_sequences)
    @settings(max_examples=60, deadline=None)
    def test_write_clock_ablation(self, ops):
        assert_differential(ops, write_check=WriteCheckMode.WRITE_CLOCK)

    @given(op_sequences)
    @settings(max_examples=60, deadline=None)
    def test_rmw_pairs_ordered(self, ops):
        assert_differential(ops, treat_rmw_pairs_as_ordered=True)

    @given(op_sequences)
    @settings(max_examples=60, deadline=None)
    def test_no_origin_learning(self, ops):
        """With learning off the coverage overrides never fire, so the
        probe-based annotation maintenance carries the whole proof."""
        assert_differential(
            ops,
            origin_learns_on_get=False,
            origin_learns_on_put_check=False,
        )

    @given(op_sequences)
    @settings(max_examples=40, deadline=None)
    def test_strict_comparison_disables_the_fast_path(self, ops):
        """Under the STRICT ablation the epoch machinery must stand down
        entirely: profiles are equal including ``compares``."""
        fast, slow = assert_differential(ops, comparison=ComparisonMode.STRICT)
        assert fast.profiler.totals() == slow.profiler.totals()
        assert fast.profiler.totals()["epoch_hits"] == 0


class TestPatternCorpusDifferential:
    """Whole-runtime differential over the labelled corpus (satellite 1)."""

    @pytest.mark.parametrize(
        "pattern", pattern_corpus(), ids=lambda p: p.name
    )
    def test_verdicts_and_metrics_identical(self, pattern):
        run_differential(pattern.build, seed=0)

    @pytest.mark.parametrize(
        "pattern", rmw_pattern_corpus(), ids=lambda p: p.name
    )
    def test_rmw_corpus_identical(self, pattern):
        run_differential(pattern.build, seed=0)

    def test_epoch_mode_actually_probes_on_the_corpus(self):
        """Anti-vacuity: across the corpus the fast path must fire — a
        differential test of a path that never executes proves nothing."""
        hits = 0
        saved = 0
        for pattern in pattern_corpus():
            on = run_in_mode(pattern.build, 0, "on")
            off = run_in_mode(pattern.build, 0, "off")
            hits += total_epoch_hits(on)
            saved += total_compares(off) - total_compares(on)
        assert hits > 0
        assert saved > 0


class TestScheduleSpaceDifferential:
    """Exploration-level differential: many interleavings, decision logs
    and per-schedule metrics included in the byte-compare."""

    @pytest.mark.parametrize(
        "name", ["fig5a-concurrent-puts", "fig5c-arrival-race",
                 "unsynchronized-counter", "producer-consumer-barrier"]
    )
    def test_explored_schedules_identical(self, name):
        pattern = next(p for p in pattern_corpus() if p.name == name)
        explore_differential(pattern.build, seed=0, budget=4)


class TestKnobMatrixDifferential:
    """Epoch modes crossed with the transport/wire/moderation knobs: the
    fast path must be invisible under every combination (acceptance
    criterion; the CI campaign loop runs the full-size version)."""

    @pytest.mark.parametrize("transport", ["roundtrip", "piggyback"])
    @pytest.mark.parametrize("wire", ["full", "delta", "truncated"])
    @pytest.mark.parametrize("moderation", [False, True])
    def test_matrix(self, transport, wire, moderation):
        pattern = next(
            p for p in pattern_corpus() if p.name == "fig5a-concurrent-puts"
        )

        def build(seed):
            runtime = pattern.build(seed)
            runtime.set_clock_transport(transport)
            runtime.set_clock_wire(wire)
            runtime.set_cq_moderation(moderation)
            return runtime

        run_differential(build, seed=0)
