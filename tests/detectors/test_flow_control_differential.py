"""Differential proof that credit-based flow control is pure admission
control (satellite of the adaptive control plane).

``RuntimeConfig.flow_control`` decides HOW a sender waits for a receive
buffer — blind RNR retransmission versus a receiver-granted credit — but
never WHICH send matches which receive: per-channel FIFO matching is
untouched.  Three layers of evidence:

* **corpus** — every labelled racy pattern (plus the RMW corpus) runs in
  both modes.  These patterns never saturate a receive queue, so the modes
  must agree on *everything*: verdict, metrics (minus the credit gate's own
  lazy instruments), final values, even elapsed sim-time — credit mode is
  free when no stall happens.

* **saturation** — a workload that genuinely overruns the receiver (RNR
  retries in one mode, credit stalls in the other) with a seeded
  write-write race.  Timing now legitimately differs, so the comparison
  narrows to what admission control must preserve: race verdicts
  field-for-field (clocks included, times excluded) and final memory.

* **fuzzed schedules** — the saturating workload under a latency/grant/
  backoff fuzzer, one run per mode per seed.  The conflict-order
  fingerprint, flagged symbols, final values and read multisets must match
  pairwise: whatever schedule the fuzzer forces, both admission protocols
  serialize the same accesses in the same order.
"""

import json

import pytest

from repro.explore.fuzzer import ScheduleFuzzer
from repro.explore.runner import run_schedule
from repro.memory.directory import PlacementPolicy
from repro.net.flow_control import FLOW_CONTROL_MODES
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.racy_patterns import pattern_corpus, rmw_pattern_corpus

from tests.detectors.differential import race_digest

RECEIVER_THINK = 3.0
COARSE_BACKOFF = 8.0
MESSAGES = 12


# -- digests -------------------------------------------------------------------------


def verdict_digest(result):
    """What admission control must preserve under ANY schedule: the race
    verdict (every field except absolute times) and final memory."""
    races = []
    for record in result.races.records():
        fields = race_digest(record)
        del fields["time"]
        races.append(fields)
    payload = {
        "races": races,
        "race_count": result.race_count,
        "final_shared_values": {
            symbol: [repr(v) for v in values]
            for symbol, values in sorted(result.final_shared_values.items())
        },
    }
    return json.dumps(payload, sort_keys=True)


def strict_digest(result):
    """The byte-for-byte view for runs where no stall/retry ever happens:
    everything, timing included.  Only the credit gate's own lazy
    instruments (``flow_control.*``) are excused — they exist exactly when
    a gate was created, which is the mode knob itself, not behaviour."""
    payload = {
        "verdict": verdict_digest(result),
        "times": [r.time for r in result.races.records()],
        "elapsed_sim_time": result.elapsed_sim_time,
        "metrics": {
            key: value
            for key, value in result.metrics.items()
            if not key.startswith("flow_control.")
        },
        "detection_profile": {
            bucket: dict(counts)
            for bucket, counts in sorted(result.detection_profile.items())
        },
    }
    return json.dumps(payload, sort_keys=True)


# -- workloads -----------------------------------------------------------------------


def run_in_flow_mode(build, seed, mode):
    runtime = build(seed)
    runtime.set_flow_control(mode)
    result = runtime.run()
    retries = sum(nic.rnr_retries for nic in runtime.nics)
    return result, retries


def racy_saturating_factory(seed):
    """A sender overrunning a slow receiver, with one seeded race: both
    ranks put to ``scratch[0]`` with no synchronization between them — a
    write-write race whatever the send stream's admission protocol does.
    (The send/recv stream itself synchronizes, so the race must come from
    a channel the matching machinery does not order.)"""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            seed=seed,
            latency="constant",
            verbs_backpressure="block",
            verbs_rnr_backoff=COARSE_BACKOFF,
        )
    )
    runtime.declare_array(
        "inbox", 4, policy=PlacementPolicy.OWNER, owner=1, initial=0
    )
    runtime.declare_array(
        "scratch", 1, policy=PlacementPolicy.OWNER, owner=1, initial=0
    )

    def sender(api):
        yield from api.put("scratch", 7, index=0)
        for value in range(MESSAGES):
            yield from api.isend_throttled(1, value, symbol="inbox")
        yield from api.wait_all()

    def receiver(api):
        yield from api.put("scratch", 99, index=0)
        received = 0
        while received < MESSAGES:
            api.irecv(0, "inbox", index=received % 4)
            done = yield from api.wait_recv(1)
            received += len(done)
            yield from api.compute(RECEIVER_THINK)

    runtime.set_program(0, sender)
    runtime.set_program(1, receiver)
    return runtime


# -- the differential ----------------------------------------------------------------


class TestCorpusDifferential:
    """Unsaturated runs: credit mode must be entirely free."""

    @pytest.mark.parametrize("pattern", pattern_corpus(), ids=lambda p: p.name)
    def test_pattern_corpus_byte_identical(self, pattern):
        self._assert_identical(pattern.build)

    @pytest.mark.parametrize(
        "pattern", rmw_pattern_corpus(), ids=lambda p: p.name
    )
    def test_rmw_corpus_byte_identical(self, pattern):
        self._assert_identical(pattern.build)

    @staticmethod
    def _assert_identical(build):
        rnr, retries = run_in_flow_mode(build, 0, "rnr")
        credit, _ = run_in_flow_mode(build, 0, "credit")
        assert verdict_digest(credit) == verdict_digest(rnr)
        if retries == 0:
            # Nothing ever stalled, so the protocols were never exercised
            # differently: the runs must be byte-identical, timing included.
            assert strict_digest(credit) == strict_digest(rnr)


class TestSaturationDifferential:
    """Saturated runs: timing differs, the verdict must not."""

    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for mode in FLOW_CONTROL_MODES:
            result, retries = run_in_flow_mode(racy_saturating_factory, 0, mode)
            out[mode] = {"result": result, "retries": retries}
        return out

    def test_both_protocols_actually_exercised(self, runs):
        """Anti-vacuity: the workload must overrun the receiver."""
        assert runs["rnr"]["retries"] > 0
        assert runs["credit"]["retries"] == 0
        assert (
            runs["credit"]["result"].metrics.get(
                "flow_control.credit_stalls{rank=1}", 0
            )
            > 0
        )

    def test_seeded_race_is_detected(self, runs):
        assert runs["rnr"]["result"].race_count > 0

    def test_verdicts_identical_despite_different_timing(self, runs):
        rnr, credit = runs["rnr"]["result"], runs["credit"]["result"]
        assert verdict_digest(credit) == verdict_digest(rnr)
        assert credit.elapsed_sim_time != rnr.elapsed_sim_time, (
            "the comparison is only meaningful because the schedules "
            "really do diverge in time"
        )


class TestFuzzedScheduleDifferential:
    """Whatever schedule the fuzzer forces, both protocols serialize the
    same accesses in the same order."""

    @pytest.mark.parametrize("fuzz_seed", [1, 2, 3, 4])
    def test_fuzzed_outcomes_pair_up(self, fuzz_seed):
        outcomes = {}
        for mode in FLOW_CONTROL_MODES:
            outcomes[mode] = run_schedule(
                racy_saturating_factory,
                0,
                ScheduleFuzzer(
                    seed=fuzz_seed, reorder_probability=0.5, quantum=2.0
                ),
                configure=lambda runtime: runtime.set_flow_control(mode),
            )
        rnr, credit = outcomes["rnr"], outcomes["credit"]
        assert credit.fingerprint == rnr.fingerprint, (
            "conflict order must survive the admission-protocol swap"
        )
        assert credit.flagged == rnr.flagged
        assert credit.final_values == rnr.final_values
        assert credit.read_values == rnr.read_values

    def test_fuzzed_modes_log_their_own_decision_kinds(self):
        """The two modes explore DIFFERENT choice points (rnr vs credit
        decisions) yet still converge on the same outcome — the strongest
        form of the admission-control claim."""
        kinds = {}
        for mode in FLOW_CONTROL_MODES:
            outcome = run_schedule(
                racy_saturating_factory,
                0,
                ScheduleFuzzer(seed=7, reorder_probability=1.0, quantum=1.0),
                configure=lambda runtime: runtime.set_flow_control(mode),
            )
            kinds[mode] = {
                d.kind for d in outcome.decisions.entries if d is not None
            }
        assert "rnr" in kinds["rnr"] and "credit" not in kinds["rnr"]
        assert "credit" in kinds["credit"] and "rnr" not in kinds["credit"]
