"""Unit tests for the baseline detectors (single-clock, lockset, post-mortem)."""

import pytest

from repro.detectors.base import DetectedRace, DetectionResult
from repro.detectors.lockset import LocksetDetector, nic_lock_name
from repro.detectors.postmortem import PostMortemDualClockDetector
from repro.detectors.single_clock import SingleClockDetector
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind
from repro.trace.recorder import TraceRecorder


def build_trace(entries, world_size=3):
    """entries: list of (rank, offset, kind, time) tuples on owner rank 1."""
    recorder = TraceRecorder(world_size)
    for rank, offset, kind, time in entries:
        recorder.record_access(
            rank, GlobalAddress(1, offset), kind, value=rank, time=time,
            symbol=f"sym{offset}", operation="put" if kind is AccessKind.WRITE else "get",
        )
    return recorder.accesses()


W, R = AccessKind.WRITE, AccessKind.READ


class TestDetectionResult:
    def test_flagged_sets_and_grouping(self):
        finding = DetectedRace(
            address=GlobalAddress(1, 0), symbol="x", ranks=(0, 2), kinds=("write", "write")
        )
        result = DetectionResult("d", findings=[finding], accesses_analyzed=5)
        assert result.flagged_addresses() == {GlobalAddress(1, 0)}
        assert result.flagged_symbols() == {"x"}
        assert result.count() == 1
        assert list(result.by_address()) == [GlobalAddress(1, 0)]

    def test_involves_write(self):
        read_read = DetectedRace(
            address=GlobalAddress(0, 0), symbol=None, ranks=(0, 1), kinds=("read", "read")
        )
        assert not read_read.involves_write()


class TestSingleClockDetector:
    def test_flags_unordered_writes(self):
        trace = build_trace([(0, 0, W, 1.0), (2, 0, W, 2.0)])
        result = SingleClockDetector().detect(trace, 3)
        assert result.count() == 1

    def test_flags_read_read_pairs_as_false_positives(self):
        """The false positives the paper's dual-clock design eliminates (IV-D)."""
        trace = build_trace([(0, 0, R, 1.0), (2, 0, R, 2.0)])
        detector = SingleClockDetector()
        result = detector.detect(trace, 3)
        assert result.count() == 1
        assert detector.read_read_findings(result) == result.findings

    def test_reports_at_least_as_many_as_dual_clock(self):
        trace = build_trace([
            (0, 0, W, 1.0), (2, 0, R, 2.0), (0, 1, R, 3.0), (2, 1, R, 4.0), (2, 0, W, 5.0),
        ])
        single = SingleClockDetector().detect(trace, 3).count()
        dual = PostMortemDualClockDetector().detect(trace, 3).count()
        assert single >= dual

    def test_single_writer_program_is_clean(self):
        trace = build_trace([(0, 0, W, float(t)) for t in range(5)])
        assert SingleClockDetector().detect(trace, 3).count() == 0

    def test_world_size_validated(self):
        with pytest.raises(ValueError):
            SingleClockDetector().detect([], 0)


class TestLocksetDetector:
    def test_nic_locks_mask_every_race(self):
        """The point of the baseline: consistent NIC locking hides logical races."""
        trace = build_trace([(0, 0, W, 1.0), (2, 0, W, 2.0), (1, 0, R, 3.0)])
        result = LocksetDetector().detect(trace, 3)
        assert result.count() == 0

    def test_without_nic_locks_shared_written_data_is_flagged(self):
        trace = build_trace([(0, 0, W, 1.0), (2, 0, W, 2.0)])
        result = LocksetDetector(model_nic_locks=False).detect(trace, 3)
        assert result.count() == 1

    def test_extra_user_locks_keep_discipline(self):
        trace = build_trace([(0, 0, W, 1.0), (2, 0, W, 2.0)])
        # Both accesses hold the same user lock "L": no warning even without NIC locks.
        extra = {access.access_id: ["L"] for access in trace}
        result = LocksetDetector(model_nic_locks=False, extra_locks_by_access=extra).detect(trace, 3)
        assert result.count() == 0

    def test_read_only_data_never_warns(self):
        trace = build_trace([(0, 0, R, 1.0), (2, 0, R, 2.0)])
        result = LocksetDetector(model_nic_locks=False).detect(trace, 3)
        assert result.count() == 0

    def test_single_rank_data_never_warns(self):
        trace = build_trace([(0, 0, W, 1.0), (0, 0, W, 2.0)])
        assert LocksetDetector(model_nic_locks=False).detect(trace, 3).count() == 0

    def test_lock_name_is_stable(self):
        assert nic_lock_name(GlobalAddress(2, 5)) == "nic-lock:2:5"


class TestPostMortemDetector:
    def test_matches_online_detector_on_simple_conflict(self):
        trace = build_trace([(0, 0, W, 1.0), (2, 0, W, 2.0)])
        result = PostMortemDualClockDetector().detect(trace, 3)
        assert result.count() == 1
        finding = result.findings[0]
        assert set(finding.ranks) == {0, 2}
        assert finding.involves_write()

    def test_read_read_is_not_flagged(self):
        trace = build_trace([(0, 0, R, 1.0), (2, 0, R, 2.0)])
        assert PostMortemDualClockDetector().detect(trace, 3).count() == 0

    def test_world_size_validated(self):
        with pytest.raises(ValueError):
            PostMortemDualClockDetector().detect([], -1)
