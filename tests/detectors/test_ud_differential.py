"""Differential proof that the UD service level never changes a verdict.

``RuntimeConfig.transport`` decides HOW clock-carrying data messages cross
the fabric — one reliable FIFO transmission versus sequence-numbered
datagrams that may be dropped, duplicated or reordered and repaired by
receiver-driven resync — but never WHAT the detector decides: the detector
always stamps the in-process carried clock, and the UD machinery only
settles whether the receiver's wire view could have reconstructed it.
Three layers of evidence:

* **corpus** — every labelled pattern (racy and quiet, plus the RMW
  corpus) runs under both transports on a sparse clock wire.  The one
  semantic UD is *allowed* to change is delivery order (it has no FIFO
  clamp), so the digests must match byte-for-byte unless a UD channel
  counted a genuine overtake — and even then both transports must flag
  every labelled racy symbol.

* **fuzzed drop/reorder schedules** — the labelled corpus explored under
  a fuzzer with nonzero drop/duplicate/reorder rates, UD configured.
  Racy patterns: every schedule flags a race and exploration finds the
  labelled symbols (adversarial reordering may legitimately expose
  *additional* schedule-dependent races).  Quiet
  patterns: observable behaviour — final memory and per-cell read
  multisets, the *operational* race definition — is identical in every
  schedule, i.e. the recovery machinery cannot manufacture nondeterminism
  where the program has none.

* **forced recovery** — schedules scripted to drop data datagrams, resync
  requests and resync replies mid-pattern reproduce the RC verdict
  record-for-record (clocks included), proving the historical-frame rule:
  a resync answered with the sender's *current* clock would manufacture
  happens-before and fail this comparison.
"""

import pytest

from repro.explore.runner import MATRIX_CLOCK, Explorer
from repro.workloads.racy_patterns import pattern_corpus, rmw_pattern_corpus

from tests.detectors.differential import race_digest
from tests.net.test_ud_transport import ForcedFates, controlled, sparse_wire_factory

CORPUS = pattern_corpus() + rmw_pattern_corpus()


def sparse_wire(runtime):
    """Pin both transports to the same sparse clock wire, so UD datagrams
    carry delta frames (the format drops can actually corrupt)."""
    runtime.set_clock_transport("piggyback")
    runtime.set_clock_wire("delta")


def verdict_digest(result):
    races = []
    for record in result.races.records():
        fields = race_digest(record)
        del fields["time"]
        races.append(fields)
    return {
        "races": races,
        "final": {
            symbol: [repr(v) for v in values]
            for symbol, values in sorted(result.final_shared_values.items())
        },
    }


class TestCorpusDifferential:
    @pytest.mark.parametrize("pattern", CORPUS, ids=lambda p: p.name)
    def test_transports_agree_on_verdict_and_label(self, pattern):
        rc = pattern.build(0)
        sparse_wire(rc)
        ud = pattern.build(0)
        sparse_wire(ud)
        ud.set_transport("ud")
        rc_result, ud_result = rc.run(), ud.run()
        identical = verdict_digest(ud_result) == verdict_digest(rc_result)
        if not identical:
            # The only licence UD has to diverge: a delivery genuinely
            # overtook an earlier one (no FIFO clamp), changing the
            # schedule itself — never the detection of a given schedule.
            # (The changed schedule may then expose additional real
            # races, e.g. a flag only ordered by FIFO delivery.)
            overtakes = sum(
                channel.stats.reordered
                for channel in ud.fabric.ud_channels().values()
            )
            assert overtakes > 0, (
                f"{pattern.name}: verdicts diverged with zero overtakes"
            )
        if pattern.racy:
            # Which of a pattern's labelled races manifests is timing-
            # and clock-transport-dependent (the labels were derived
            # under the default roundtrip transport); what both service
            # levels must guarantee is that something real is flagged.
            for result in (rc_result, ud_result):
                flagged = {s for s in result.races.by_symbol() if s is not None}
                assert flagged, pattern.name


class TestFuzzedScheduleDifferential:
    def _explore(self, pattern, budget=5):
        def configure(runtime):
            sparse_wire(runtime)
            runtime.set_transport("ud")

        explorer = Explorer(
            pattern.build, seed=0, offline_detectors=[], configure=configure
        )
        return explorer.explore_fuzzed(
            budget,
            reorder_probability=0.5,
            drop_probability=0.2,
            duplicate_probability=0.1,
        )

    @pytest.mark.parametrize(
        "pattern", [p for p in CORPUS if p.racy], ids=lambda p: p.name
    )
    def test_racy_patterns_are_found_across_drop_reorder_schedules(self, pattern):
        """Every explored schedule of a racy pattern flags something, and
        the labelled symbols are among what exploration finds.  (A single
        schedule may flag *more* than the nominal label: unclamped
        reordering legitimately exposes schedule-dependent races — e.g. a
        completion flag that was only ordered by FIFO delivery.)"""
        result = self._explore(pattern)
        found = set()
        for outcome in result.outcomes:
            assert outcome.flagged[MATRIX_CLOCK], (
                f"{pattern.name}: schedule {outcome.schedule_id} flagged nothing"
            )
            found |= outcome.flagged[MATRIX_CLOCK]
        assert found & set(pattern.racy_symbols), (
            f"{pattern.name}: exploration never flagged a labelled symbol"
        )

    @pytest.mark.parametrize(
        "pattern", [p for p in CORPUS if not p.racy], ids=lambda p: p.name
    )
    def test_quiet_patterns_stay_deterministic_in_every_schedule(self, pattern):
        """The operational race definition, schedule-space form: a
        race-free program's observable behaviour cannot depend on the
        schedule — drops, duplicates, reorders and resyncs included."""
        result = self._explore(pattern)
        baseline = result.outcomes[0]
        for outcome in result.outcomes[1:]:
            assert outcome.final_values == baseline.final_values, (
                f"{pattern.name}: schedule {outcome.schedule_id} diverged"
            )
            assert outcome.read_values == baseline.read_values, (
                f"{pattern.name}: schedule {outcome.schedule_id} reads diverged"
            )


class TestForcedRecoveryDifferential:
    def test_scripted_drops_reproduce_the_rc_verdict_exactly(self):
        rc = sparse_wire_factory(transport="rc").run()
        for fates in (
            {"put_data": {0: 1}},
            {"put_data": {1: 1, 2: 1}},
            {"put_data": {0: 2, 3: 1}, "ud_resync_request": {0: 1}},
            {"put_data": {2: 1}, "ud_resync_full": {0: 1}},
        ):
            runtime = controlled(sparse_wire_factory(), ForcedFates(fates=fates))
            result = runtime.run()
            assert verdict_digest(result) == verdict_digest(rc), fates
            assert runtime.clock_transport_stats().ud_dropped >= 1
