"""White-box edge cases of the epoch annotation life cycle.

The property tests prove the fast path verdict-identical over random
histories; these tests pin the three transitions the optimisation lives or
dies by, by inspecting the annotation state directly:

* **same-rank re-read** — repeated reads by one rank keep the datum in the
  epoch state (each read's merged content equals that reader's clock), so
  a long exclusive-read phase stays O(1) per check;
* **read-share promotion, then demotion on the next write** — a carried
  read whose snapshot has no O(1) coverage witness drops the annotation to
  the full-vector state (the fallback compares take over), and the next
  owner-event write re-anchors the cell clocks to the owner's fresh tick,
  restoring the epoch state;
* **carried read racing an epoch write** — the racy verdict itself is
  decided by the O(1) probe, and both modes report the identical record.
"""

from repro.core.clocks import Epoch
from repro.core.detector import DetectorConfig, DualClockRaceDetector
from repro.memory.address import GlobalAddress
from repro.memory.public import MemoryCell

from tests.detectors.differential import race_digest

WORLD = 3
ADDR = GlobalAddress(0, 7)


class TestSameRankReRead:
    def test_re_reads_keep_the_epoch_and_probe_in_o1(self):
        fast = DualClockRaceDetector(WORLD, DetectorConfig(epochs=True))
        cell = MemoryCell()
        fast.on_write(1, ADDR, cell, symbol="x")
        info = fast._info(ADDR)
        assert info.access_epoch is not None
        assert info.write_epoch is not None
        # Order rank 2 after the write (the owner ticked on its reception,
        # so the owner's clock covers the datum's whole history).
        fast.transfer_clock(ADDR.rank, 2)

        # Rank 2 reads twice: cross-rank, so the write-clock check runs
        # (no same-origin skip) and must be decided by the probe each time.
        fast.on_read(2, ADDR, cell, symbol="x")
        first = fast.profiler.snapshot()["read_live"]
        assert first["epoch_hits"] == 1
        assert first["compares"] == 0

        fast.on_read(2, ADDR, cell, symbol="x")
        second = fast.profiler.snapshot()["read_live"]
        assert second["epoch_hits"] == 2
        assert second["compares"] == 0

        # The re-read keeps the access clock in the epoch state, anchored
        # at the re-reader's latest tick (its merged clock IS the content).
        info = fast._info(ADDR)
        assert info.access_epoch == Epoch(2, fast.current_clock(2).component(2))
        # Reads never touch W(x): the writer's annotation stands.
        assert info.write_epoch.rank in (1, 0)
        assert len(fast.report) == 0


class TestReadSharePromotionThenWriteDemotion:
    def test_carried_read_share_promotes_then_exclusive_write_demotes(self):
        fast = DualClockRaceDetector(WORLD, DetectorConfig(epochs=True))
        cell = MemoryCell()

        # Rank 2 snapshots its clock BEFORE the write exists: the carried
        # read below lands with no knowledge of the datum's history.
        stale = fast.current_clock(2)
        fast.on_write(1, ADDR, cell, symbol="x")
        assert fast._info(ADDR).access_epoch is not None

        # The carried read has no O(1) coverage witness: genuine read-share,
        # the annotation must drop to the full-vector state.
        fast.on_read(2, ADDR, cell, carried_clock=stale, symbol="x")
        assert fast._info(ADDR).access_epoch is None

        # With the annotation gone the next cross-rank check falls back to
        # full compares — the slow path must remain reachable.
        before = fast.profiler.snapshot()["write_live"]
        fast.on_write(2, ADDR, cell, symbol="x")
        after = fast.profiler.snapshot()["write_live"]
        assert after["compares"] > before["compares"]
        assert after["epoch_hits"] == before["epoch_hits"]

        # That write is an owner event: the owner's fresh tick dominates
        # the merged content, re-anchoring both clocks to a single epoch —
        # the demotion that makes the next exclusive phase O(1) again.
        info = fast._info(ADDR)
        owner_tick = fast.current_clock(ADDR.rank).component(ADDR.rank)
        assert info.access_epoch == Epoch(ADDR.rank, owner_tick)
        assert info.write_epoch == Epoch(ADDR.rank, owner_tick)

        # And the restored epoch is live: the next check is a probe.
        fast.on_read(1, ADDR, cell, symbol="x")
        assert fast.profiler.snapshot()["read_live"]["epoch_hits"] >= 1


class TestCarriedReadRacingEpochWrite:
    def test_race_decided_by_the_probe_and_identical_across_modes(self):
        fast = DualClockRaceDetector(WORLD, DetectorConfig(epochs=True))
        slow = DualClockRaceDetector(WORLD, DetectorConfig(epochs=False))
        fast_cell, slow_cell = MemoryCell(), MemoryCell()

        # Post-time snapshot taken before the conflicting write: the carried
        # read races the epoch-annotated write in both replicas.
        fast_stale = fast.current_clock(2)
        slow_stale = slow.current_clock(2)
        fast.on_write(1, ADDR, fast_cell, symbol="x", time=1.0)
        slow.on_write(1, ADDR, slow_cell, symbol="x", time=1.0)

        fast_result = fast.on_read(
            2, ADDR, fast_cell, carried_clock=fast_stale, symbol="x", time=2.0
        )
        slow_result = slow.on_read(
            2, ADDR, slow_cell, carried_clock=slow_stale, symbol="x", time=2.0
        )

        assert fast_result.raced and slow_result.raced
        assert race_digest(fast_result.race) == race_digest(slow_result.race)

        # The fast replica decided the racy verdict with the O(1) probe
        # alone; the slow replica paid the full directional compare.
        fast_bucket = fast.profiler.snapshot()["read_carried"]
        slow_bucket = slow.profiler.snapshot()["read_carried"]
        assert fast_bucket["epoch_hits"] == 1
        assert fast_bucket["compares"] == 0
        assert slow_bucket["epoch_hits"] == 0
        assert slow_bucket["compares"] >= 1
        # Joins are pinned: the fast path saves compares, never merges.
        assert fast_bucket["joins"] == slow_bucket["joins"]

    def test_covered_carried_read_is_silent_in_both_modes(self):
        """Control: a snapshot taken AFTER learning the datum's history is
        ordered — the probe must say so too (no false positives)."""
        fast = DualClockRaceDetector(WORLD, DetectorConfig(epochs=True))
        cell = MemoryCell()
        fast.on_write(1, ADDR, cell, symbol="x", time=1.0)
        # Rank 2 synchronizes with the owner (who ticked on reception),
        # covering the datum's whole history, then posts.
        fast.transfer_clock(ADDR.rank, 2)
        covered = fast.current_clock(2)
        result = fast.on_read(
            2, ADDR, cell, carried_clock=covered, symbol="x", time=2.0
        )
        assert not result.raced
        bucket = fast.profiler.snapshot()["read_carried"]
        assert bucket["epoch_hits"] == 1
        assert bucket["compares"] == 0
        assert len(fast.report) == 0
