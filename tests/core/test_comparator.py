"""Unit tests for compare_clocks / max_clock (Algorithms 3 and 4)."""

import pytest

from repro.core.clocks import VectorClock
from repro.core.comparator import (
    ClockOrdering,
    compare_clocks,
    compare_clocks_strict,
    concurrent,
    happens_before,
    max_clock,
    ordering,
)


class TestCompareClocks:
    def test_mattern_order_holds_for_dominated_clock(self):
        assert compare_clocks([1, 0, 0], [1, 1, 0])

    def test_not_ordered_when_equal(self):
        assert not compare_clocks([1, 1], [1, 1])

    def test_not_ordered_when_concurrent(self):
        assert not compare_clocks([1, 0], [0, 1])
        assert not compare_clocks([0, 1], [1, 0])

    def test_accepts_vector_clock_instances(self):
        a = VectorClock.from_entries([0, 1])
        b = VectorClock.from_entries([2, 1])
        assert compare_clocks(a, b)

    def test_happens_before_is_alias(self):
        assert happens_before([0, 0], [1, 0]) == compare_clocks([0, 0], [1, 0])


class TestStrictComparison:
    def test_strict_requires_every_component(self):
        assert compare_clocks_strict([0, 0], [1, 1])
        assert not compare_clocks_strict([0, 1], [1, 1])

    def test_strict_is_stronger_than_mattern(self):
        # Any strictly-less pair is also Mattern-less; the converse fails.
        pairs = [([0, 0], [1, 1]), ([0, 1], [1, 1]), ([1, 0, 0], [1, 1, 0])]
        for first, second in pairs:
            if compare_clocks_strict(first, second):
                assert compare_clocks(first, second)
        assert compare_clocks([0, 1], [1, 1]) and not compare_clocks_strict([0, 1], [1, 1])


class TestConcurrent:
    def test_paper_figure_5a_clocks_are_concurrent(self):
        # Figure 5a: 110 x 001
        assert concurrent([1, 1, 0], [0, 0, 1])

    def test_ordered_clocks_are_not_concurrent(self):
        assert not concurrent([1, 0, 0], [1, 2, 3])

    def test_equal_clocks_are_not_concurrent(self):
        assert not concurrent([2, 2], [2, 2])


class TestOrdering:
    def test_all_four_outcomes(self):
        assert ordering([1, 0], [1, 1]) is ClockOrdering.BEFORE
        assert ordering([1, 1], [1, 0]) is ClockOrdering.AFTER
        assert ordering([1, 1], [1, 1]) is ClockOrdering.EQUAL
        assert ordering([1, 0], [0, 1]) is ClockOrdering.CONCURRENT

    def test_is_ordered_flag(self):
        assert ordering([1, 0], [1, 1]).is_ordered
        assert not ordering([1, 0], [0, 1]).is_ordered


class TestMaxClock:
    def test_componentwise_max(self):
        merged = max_clock([1, 5, 0], [3, 2, 4])
        assert merged.entries.tolist() == [3, 5, 4]

    def test_result_dominates_both_inputs(self):
        a, b = [2, 0, 7], [1, 3, 3]
        merged = max_clock(a, b)
        assert merged.dominates(a)
        assert merged.dominates(b)

    def test_inputs_unchanged(self):
        a = VectorClock.from_entries([1, 0])
        b = VectorClock.from_entries([0, 1])
        max_clock(a, b)
        assert a.entries.tolist() == [1, 0]
        assert b.entries.tolist() == [0, 1]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            max_clock([1, 2], [1, 2, 3])
