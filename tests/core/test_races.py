"""Unit tests for race records, reports and the signalling policy."""

import pytest

from repro.core.races import RaceConditionSignal, RaceRecord, RaceReport, SignalPolicy
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind


def make_record(
    rank=2,
    prev_rank=0,
    kind=AccessKind.WRITE,
    prev_kind=AccessKind.WRITE,
    offset=0,
    symbol="a",
    time=1.0,
):
    return RaceRecord(
        address=GlobalAddress(1, offset),
        current_rank=rank,
        current_kind=kind,
        current_clock=(0, 0, 1),
        previous_rank=prev_rank,
        previous_kind=prev_kind,
        previous_clock=(1, 1, 0),
        time=time,
        symbol=symbol,
        operation="put",
    )


class TestRaceRecord:
    def test_involves_write_true_for_write_pairs(self):
        assert make_record().involves_write()
        assert make_record(kind=AccessKind.READ).involves_write()

    def test_involves_write_false_for_read_read(self):
        record = make_record(kind=AccessKind.READ, prev_kind=AccessKind.READ)
        assert not record.involves_write()

    def test_key_is_symmetric_in_the_pair(self):
        one = make_record(rank=2, prev_rank=0)
        two = make_record(rank=0, prev_rank=2)
        assert one.key() == two.key()

    def test_key_distinguishes_addresses(self):
        assert make_record(offset=0).key() != make_record(offset=1).key()

    def test_str_mentions_symbol_ranks_and_clocks(self):
        text = str(make_record())
        assert "a" in text and "P2" in text and "P0" in text
        assert "(0, 0, 1)" in text


class TestRaceReport:
    def test_collect_policy_stores_silently(self, capsys):
        report = RaceReport(SignalPolicy.COLLECT)
        report.signal(make_record())
        assert capsys.readouterr().out == ""
        assert len(report) == 1

    def test_warn_policy_prints(self, capsys):
        report = RaceReport(SignalPolicy.WARN)
        report.signal(make_record())
        assert "RACE" in capsys.readouterr().out

    def test_abort_policy_raises_but_still_records(self):
        report = RaceReport(SignalPolicy.ABORT)
        with pytest.raises(RaceConditionSignal):
            report.signal(make_record())
        assert len(report) == 1

    def test_read_read_records_are_rejected(self):
        report = RaceReport()
        bad = make_record(kind=AccessKind.READ, prev_kind=AccessKind.READ)
        with pytest.raises(ValueError, match="read-only"):
            report.signal(bad)

    def test_distinct_deduplicates_by_key(self):
        report = RaceReport()
        report.signal(make_record(time=1.0))
        report.signal(make_record(time=2.0))
        report.signal(make_record(offset=3, time=3.0))
        assert report.count() == 3
        assert len(report.distinct()) == 2

    def test_grouping_by_address_and_symbol(self):
        report = RaceReport()
        report.signal(make_record(offset=0, symbol="a"))
        report.signal(make_record(offset=1, symbol="b"))
        report.signal(make_record(offset=1, symbol="b"))
        assert len(report.by_address()) == 2
        assert set(report.by_symbol()) == {"a", "b"}
        assert len(report.by_symbol()["b"]) == 2

    def test_involving_rank_filters(self):
        report = RaceReport()
        report.signal(make_record(rank=2, prev_rank=0))
        report.signal(make_record(rank=3, prev_rank=1))
        assert len(report.involving_rank(0)) == 1
        assert len(report.involving_rank(3)) == 1
        assert report.involving_rank(7) == []

    def test_summary_mentions_counts(self):
        report = RaceReport()
        assert "no race" in report.summary()
        report.signal(make_record())
        assert "1 distinct race" in report.summary()

    def test_clear_resets(self):
        report = RaceReport()
        report.signal(make_record())
        report.clear()
        assert not report
        assert report.count() == 0
