"""Unit tests for the dual-clock race detector (Algorithms 1, 2, 5)."""

import pytest

from repro.core.detector import (
    ComparisonMode,
    DetectorConfig,
    DualClockRaceDetector,
    WriteCheckMode,
)
from repro.core.races import RaceReport, SignalPolicy
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind
from repro.memory.public import MemoryCell


def make_detector(world_size=3, **config_kwargs):
    return DualClockRaceDetector(world_size, config=DetectorConfig(**config_kwargs))


def addr(rank=1, offset=0):
    return GlobalAddress(rank, offset)


class TestBasicDetection:
    def test_first_access_never_races(self):
        detector = make_detector()
        cell = MemoryCell()
        result = detector.on_write(0, addr(), cell, symbol="x")
        assert not result.raced
        assert detector.race_count() == 0

    def test_unordered_writes_from_two_ranks_race(self):
        """The core of Figure 5a: two writers that never synchronized."""
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(0, addr(), cell, symbol="a")
        result = detector.on_read(2, addr(), cell, symbol="a") if False else detector.on_write(2, addr(), cell, symbol="a")
        assert result.raced
        record = result.race
        assert record.current_rank == 2
        assert record.previous_rank == 0
        assert record.symbol == "a"

    def test_concurrent_reads_do_not_race(self):
        """Figure 4: read-only concurrency is explicitly not a race."""
        detector = make_detector()
        cell = MemoryCell()
        first = detector.on_read(0, addr(), cell)
        second = detector.on_read(2, addr(), cell)
        assert not first.raced and not second.raced
        assert detector.race_count() == 0

    def test_read_after_unordered_write_races(self):
        detector = make_detector()
        cell = MemoryCell()
        # Rank 2 ticks a few times locally so its clock is not dominated.
        detector.local_event(2)
        detector.local_event(2)
        detector.on_write(0, addr(), cell, symbol="x")
        result = detector.on_read(2, addr(), cell, symbol="x")
        assert result.raced
        assert result.race.current_kind is AccessKind.READ
        assert result.race.previous_kind is AccessKind.WRITE

    def test_write_after_unordered_read_races(self):
        detector = make_detector()
        cell = MemoryCell()
        detector.local_event(2)
        detector.on_read(2, addr(), cell, symbol="x")
        result = detector.on_write(0, addr(), cell, symbol="x")
        assert result.raced

    def test_synchronization_through_owner_orders_the_writes(self):
        """A clock transfer that includes the owner's reception event orders the pair.

        The owner's clock advanced when the first write landed in its memory,
        so a synchronization involving the owner (e.g. a barrier) propagates
        that reception to the second writer.
        """
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(0, addr(rank=1), cell)
        detector.transfer_clock(1, 2)   # the owner's knowledge reaches rank 2
        result = detector.on_write(2, addr(rank=1), cell)
        assert not result.raced

    def test_issuer_only_synchronization_still_flags_arrival_race(self):
        """Syncing with the *issuer* alone does not order the arrivals (Fig. 5c logic).

        One-sided puts are fire-and-forget: knowing that P0 issued the first
        write says nothing about whether it has landed, so the second write
        can still reach the memory first and the detector keeps signalling.
        """
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(0, addr(rank=1), cell)
        detector.transfer_clock(0, 2)   # rank 2 knows the issue, not the arrival
        result = detector.on_write(2, addr(rank=1), cell)
        assert result.raced

    def test_reader_learns_and_then_writes_without_race(self):
        """Read-modify-write by a process that saw the latest write is ordered."""
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(0, addr(), cell)
        detector.on_read(2, addr(), cell)       # rank 2 learns the datum clock
        result = detector.on_write(2, addr(), cell)
        assert not result.raced

    def test_same_origin_consecutive_accesses_never_race(self):
        """Figure 2: put then get by the same process is program-ordered."""
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(2, addr(), cell)
        assert not detector.on_read(2, addr(), cell).raced
        assert not detector.on_write(2, addr(), cell).raced

    def test_third_party_still_detected_after_same_origin_sequence(self):
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(2, addr(), cell)
        detector.on_write(2, addr(), cell)
        result = detector.on_write(0, addr(), cell)
        assert result.raced


class TestClockMaintenance:
    def test_cell_clocks_are_created_on_first_access(self):
        detector = make_detector()
        cell = MemoryCell()
        assert cell.access_clock is None and cell.write_clock is None
        detector.on_read(0, addr(), cell)
        assert cell.access_clock is not None and cell.write_clock is not None

    def test_write_advances_both_clocks_read_only_access_clock(self):
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(0, addr(), cell)
        write_clock_after_write = cell.write_clock.frozen()
        detector.on_read(2, addr(), cell)
        assert cell.write_clock.frozen() == write_clock_after_write
        assert cell.access_clock.frozen() != write_clock_after_write

    def test_remote_write_ticks_owner_component_in_datum_clock(self):
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(0, addr(rank=1), cell)
        # Component 1 (the owner) advanced even though rank 1 issued nothing.
        assert cell.write_clock.component(1) == 1
        assert cell.write_clock.component(0) == 1

    def test_local_write_does_not_tick_owner_twice(self):
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(1, addr(rank=1), cell)
        assert cell.write_clock.component(1) == 1

    def test_event_clocks_increase_monotonically_per_rank(self):
        detector = make_detector()
        cell = MemoryCell()
        first = detector.on_write(0, addr(), cell).event_clock
        second = detector.on_write(0, addr(), cell).event_clock
        assert second[0] > first[0]

    def test_reader_clock_absorbs_datum_history(self):
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(0, addr(), cell)
        detector.on_read(2, addr(), cell)
        reader_clock = detector.current_clock(2)
        assert reader_clock.component(0) >= 1


class TestConfigurationVariants:
    def test_disabled_detector_does_nothing(self):
        detector = make_detector(enabled=False)
        cell = MemoryCell()
        result = detector.on_write(0, addr(), cell)
        assert not result.raced
        assert cell.access_clock is None
        assert detector.checks_performed == 0
        assert detector.control_messages == 0

    def test_write_clock_mode_misses_read_write_order_violations(self):
        """The literal Algorithm 1 (check against W only) misses read/write races."""
        strict_cfg = make_detector(write_check=WriteCheckMode.WRITE_CLOCK)
        cell = MemoryCell()
        strict_cfg.local_event(2)
        strict_cfg.on_read(2, addr(), cell)
        result = strict_cfg.on_write(0, addr(), cell)
        assert not result.raced  # W(x) was still zero: missed
        # The default mode catches the same scenario.
        default = make_detector()
        cell2 = MemoryCell()
        default.local_event(2)
        default.on_read(2, addr(), cell2)
        assert default.on_write(0, addr(), cell2).raced

    def test_strict_comparison_reports_superset(self):
        """Algorithm 3 literal: equal clocks are unordered, so more reports."""
        mattern = make_detector(comparison=ComparisonMode.MATTERN)
        strict = make_detector(comparison=ComparisonMode.STRICT)
        for detector in (mattern, strict):
            cell = MemoryCell()
            detector.on_write(0, addr(), cell)
            detector.transfer_clock(0, 2)
            detector.on_write(2, addr(), cell)
        assert strict.race_count() >= mattern.race_count()

    def test_without_owner_tick_arrival_races_are_missed(self):
        """Ablation for Figure 5c: issuing-order HB misses arrival reordering."""
        def chain(detector):
            a = addr(rank=1)
            t = addr(rank=2, offset=1)
            cell_a, cell_t = MemoryCell(), MemoryCell()
            detector.on_write(0, a, cell_a)          # m1
            detector.on_write(0, t, cell_t)          # m2
            detector.on_read(2, t, cell_t)           # P2 reads m2's payload
            return detector.on_write(2, a, cell_a)   # m3

        with_tick = make_detector(write_effect_ticks_owner=True)
        without_tick = make_detector(write_effect_ticks_owner=False)
        assert chain(with_tick).raced
        assert not chain(without_tick).raced

    def test_acknowledged_puts_silence_figure_5c(self):
        """origin_learns_datum_after_write models acknowledged (blocking) puts."""
        detector = make_detector(origin_learns_datum_after_write=True)
        a = addr(rank=1)
        t = addr(rank=2, offset=1)
        cell_a, cell_t = MemoryCell(), MemoryCell()
        detector.on_write(0, a, cell_a)
        detector.on_write(0, t, cell_t)
        detector.on_read(2, t, cell_t)
        assert not detector.on_write(2, a, cell_a).raced

    def test_custom_report_is_used(self):
        report = RaceReport(SignalPolicy.COLLECT)
        detector = DualClockRaceDetector(3, report=report)
        cell = MemoryCell()
        detector.on_write(0, addr(), cell)
        detector.on_write(2, addr(), cell)
        assert len(report) == 1
        assert detector.report is report


class TestOverheadAccounting:
    def test_control_messages_accumulate(self):
        detector = make_detector()
        cell = MemoryCell()
        detector.on_write(0, addr(), cell)
        detector.on_read(2, addr(), cell)
        assert detector.checks_performed == 2
        assert detector.control_messages == 2 * detector.config.control_messages_per_check
        assert detector.clock_bytes_on_wire > 0

    def test_clock_storage_is_n_cubed_for_matrix_clocks(self):
        detector = make_detector(world_size=4)
        assert detector.clock_storage_entries() == 4 * 4 * 4

    def test_invalid_rank_rejected(self):
        detector = make_detector()
        with pytest.raises(ValueError):
            detector.on_write(5, addr(), MemoryCell())
