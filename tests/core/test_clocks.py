"""Unit tests for Lamport, vector and matrix clocks."""

import numpy as np
import pytest

from repro.core.clocks import LamportClock, MatrixClock, VectorClock


class TestLamportClock:
    def test_starts_at_given_value(self):
        assert LamportClock().value == 0
        assert LamportClock(5).value == 5

    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_observe_takes_max_plus_one(self):
        clock = LamportClock(3)
        assert clock.observe(10) == 11
        assert clock.observe(2) == 12

    def test_copy_is_independent(self):
        clock = LamportClock(1)
        copy = clock.copy()
        clock.tick()
        assert copy.value == 1

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            LamportClock(-1)


class TestVectorClockConstruction:
    def test_zeros(self):
        clock = VectorClock.zeros(4)
        assert clock.size == 4
        assert clock.total() == 0

    def test_from_entries(self):
        clock = VectorClock.from_entries([1, 2, 3])
        assert clock.entries.tolist() == [1, 2, 3]

    def test_copy_constructor(self):
        original = VectorClock.from_entries([1, 0, 2])
        clone = VectorClock(original)
        clone.tick(0)
        assert original.component(0) == 1

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            VectorClock([1, -1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VectorClock([])

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            VectorClock(0)


class TestVectorClockOperations:
    def test_tick_increments_one_component(self):
        clock = VectorClock.zeros(3)
        clock.tick(1)
        clock.tick(1)
        assert clock.entries.tolist() == [0, 2, 0]

    def test_tick_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            VectorClock.zeros(3).tick(3)

    def test_merge_is_componentwise_max(self):
        a = VectorClock.from_entries([1, 5, 0])
        b = VectorClock.from_entries([3, 2, 4])
        assert a.merged(b).entries.tolist() == [3, 5, 4]

    def test_merge_in_place_mutates(self):
        a = VectorClock.from_entries([1, 0])
        a.merge_in_place([0, 7])
        assert a.entries.tolist() == [1, 7]

    def test_merge_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorClock.zeros(2).merged(VectorClock.zeros(3))

    def test_frozen_is_hashable_tuple(self):
        clock = VectorClock.from_entries([1, 2])
        assert clock.frozen() == (1, 2)
        assert hash(clock) == hash(VectorClock.from_entries([1, 2]))

    def test_entries_returns_copy(self):
        clock = VectorClock.from_entries([1, 2])
        entries = clock.entries
        entries[0] = 99
        assert clock.component(0) == 1


class TestVectorClockOrdering:
    def test_happens_before_strict_partial_order(self):
        small = VectorClock.from_entries([1, 0, 0])
        big = VectorClock.from_entries([1, 2, 0])
        assert small.happens_before(big)
        assert not big.happens_before(small)
        assert not small.happens_before(small)

    def test_concurrent_when_incomparable(self):
        a = VectorClock.from_entries([1, 0])
        b = VectorClock.from_entries([0, 1])
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_equal_clocks_not_concurrent(self):
        a = VectorClock.from_entries([2, 2])
        assert not a.concurrent_with(VectorClock.from_entries([2, 2]))

    def test_strictly_less_requires_all_components(self):
        a = VectorClock.from_entries([1, 1])
        b = VectorClock.from_entries([2, 2])
        c = VectorClock.from_entries([2, 1])
        assert a.strictly_less(b)
        assert not a.strictly_less(c)

    def test_dominates_is_reflexive(self):
        a = VectorClock.from_entries([1, 2])
        assert a.dominates(a)

    def test_equality_against_lists(self):
        assert VectorClock.from_entries([1, 2]) == [1, 2]
        assert VectorClock.from_entries([1, 2]) != [2, 1]

    def test_str_compact_for_small_clocks(self):
        assert str(VectorClock.from_entries([1, 1, 0])) == "110"


class TestMatrixClock:
    def test_initially_zero(self):
        clock = MatrixClock(rank=1, size=3)
        assert clock.local_component() == 0
        assert clock.principal().total() == 0

    def test_tick_increments_diagonal_and_returns_principal(self):
        clock = MatrixClock(rank=2, size=3)
        view = clock.tick()
        assert view.entries.tolist() == [0, 0, 1]
        assert clock.local_component() == 1

    def test_observe_vector_merges_principal_row(self):
        clock = MatrixClock(rank=0, size=3)
        clock.tick()
        clock.observe_vector([0, 5, 2])
        assert clock.principal().entries.tolist() == [1, 5, 2]

    def test_observe_vector_records_source_row(self):
        clock = MatrixClock(rank=0, size=3)
        clock.observe_vector([0, 4, 0], source_rank=1)
        assert clock.row(1).entries.tolist() == [0, 4, 0]

    def test_observe_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            MatrixClock(0, 3).observe_vector([1, 2])

    def test_known_lower_bound_is_columnwise_min(self):
        clock = MatrixClock(rank=0, size=2)
        clock.observe_vector([3, 1])
        clock.observe_vector([2, 4], source_rank=1)
        # rows: [3,4] (principal after merges) and [2,4]
        assert clock.known_lower_bound().entries.tolist() == [2, 4]

    def test_storage_entries_is_n_squared(self):
        assert MatrixClock(0, 5).storage_entries() == 25

    def test_copy_is_independent(self):
        clock = MatrixClock(0, 2)
        clone = clock.copy()
        clock.tick()
        assert clone.local_component() == 0

    def test_rank_must_be_valid(self):
        with pytest.raises(ValueError):
            MatrixClock(rank=3, size=3)
