"""Credit-based flow control: accounting invariants and the saturation win.

Two layers of contract:

* **Gate accounting** — ``available = depth - claims`` never goes negative,
  claims settle exactly once per match, waiters are granted FIFO one per
  post, and all gate instruments exist only when a gate was created (zero
  footprint in RNR mode).
* **Protocol equivalence** — both admission protocols match sends to
  receives in the same FIFO order, so verdicts and delivered payloads are
  identical; credit mode transmits each payload exactly once (strictly
  fewer messages, zero RNR retries) and, under a realistically coarse RNR
  timer, finishes no later.
"""

import pytest

from repro.memory.directory import PlacementPolicy
from repro.net.flow_control import (
    FLOW_CONTROL_MODES,
    CreditGate,
    credit_gate_for,
    validate_flow_control,
)
from repro.runtime.runtime import DSMRuntime, RuntimeConfig

RECEIVER_THINK = 3.0
COARSE_BACKOFF = 8.0
MESSAGES = 24


def saturating_runtime(flow_control, seed=0):
    """A blasting sender against a receiver that posts one buffer at a time."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            seed=seed,
            flow_control=flow_control,
            verbs_backpressure="block",
            verbs_rnr_backoff=COARSE_BACKOFF,
        )
    )
    runtime.declare_array(
        "inbox", 8, policy=PlacementPolicy.OWNER, owner=1, initial=0
    )

    def sender(api):
        for value in range(MESSAGES):
            yield from api.isend_throttled(1, value, symbol="inbox")
        yield from api.wait_all()

    def slow_receiver(api):
        received = 0
        while received < MESSAGES:
            api.irecv(0, "inbox", index=received % 8)
            done = yield from api.wait_recv(1)
            received += len(done)
            yield from api.compute(RECEIVER_THINK)

    runtime.set_program(0, sender)
    runtime.set_program(1, slow_receiver)
    return runtime


class TestValidation:
    def test_modes(self):
        assert FLOW_CONTROL_MODES == ("rnr", "credit")
        for mode in FLOW_CONTROL_MODES:
            assert validate_flow_control(mode) == mode

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="flow_control"):
            validate_flow_control("xon-xoff")
        with pytest.raises(ValueError, match="flow_control"):
            RuntimeConfig(world_size=2, flow_control="nak") and DSMRuntime(
                RuntimeConfig(world_size=2, flow_control="nak")
            )


class FakeQueue:
    def __init__(self, rank=1):
        self.rank = rank
        self.depth = 0
        self.listener = None

    def set_post_listener(self, listener):
        self.listener = listener

    def post(self):
        self.depth += 1
        if self.listener is not None:
            self.listener()

    def consume(self):
        self.depth -= 1


class FakeEvent:
    def __init__(self):
        self.fired = False

    def succeed(self, value=None):
        self.fired = True


class FakeSim:
    """Just enough simulator for a bare gate: no controller, no scheduler."""

    def __init__(self):
        from repro.obs.observability import Observability

        self.obs = Observability()

    def call_after(self, delay, callback, name=None):  # pragma: no cover
        raise AssertionError("no controller => grants fire immediately")


class TestCreditGateAccounting:
    def test_available_tracks_posts_minus_claims(self):
        queue, sim = FakeQueue(), FakeSim()
        gate = credit_gate_for(queue, sim)
        assert credit_gate_for(queue, sim) is gate, "one gate per queue"
        assert gate.available == 0
        assert not gate.try_claim()
        queue.post()
        queue.post()
        assert gate.available == 2
        assert gate.try_claim() and gate.try_claim()
        assert gate.available == 0
        assert not gate.try_claim(), "claims cannot outrun posted buffers"
        # A match consumes the buffer AND settles its claim: net zero.
        queue.consume()
        gate.settle()
        assert gate.available == 0
        queue.post()
        assert gate.available == 1

    def test_settle_without_claim_raises(self):
        gate = CreditGate(FakeQueue(), FakeSim())
        with pytest.raises(RuntimeError, match="settle without a claim"):
            gate.settle()

    def test_waiters_granted_fifo_one_per_post(self):
        queue = FakeQueue()
        gate = credit_gate_for(queue, FakeSim())
        first, second = FakeEvent(), FakeEvent()
        gate.enqueue_waiter(first, sender=0)
        gate.enqueue_waiter(second, sender=2)
        assert gate.waiting == 2 and gate.stalls == 2
        queue.post()
        assert first.fired and not second.fired, "oldest waiter wakes first"
        queue.post()
        assert second.fired
        assert gate.grants == 2
        queue.post()
        assert gate.grants == 2, "a post with no waiters grants nothing"


class TestSaturationHeadToHead:
    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for mode in FLOW_CONTROL_MODES:
            runtime = saturating_runtime(mode)
            result = runtime.run()
            out[mode] = {
                "result": result,
                "rnr_retries": sum(nic.rnr_retries for nic in runtime.nics),
                "messages": result.fabric_stats.total_messages,
            }
        return out

    def test_verdicts_and_payloads_identical(self, runs):
        rnr, credit = runs["rnr"]["result"], runs["credit"]["result"]
        assert credit.race_count == rnr.race_count
        assert credit.final_shared_values == rnr.final_shared_values

    def test_credit_mode_never_retries(self, runs):
        assert runs["rnr"]["rnr_retries"] > 0, (
            "the saturation workload must actually trigger RNR in rnr mode"
        )
        assert runs["credit"]["rnr_retries"] == 0

    def test_credit_mode_strictly_fewer_messages(self, runs):
        assert runs["credit"]["messages"] < runs["rnr"]["messages"]
        # Exactly the retransmissions disappear: every retry was one
        # data-message transmission that credit mode never puts on the wire.
        assert (
            runs["rnr"]["messages"] - runs["credit"]["messages"]
            == runs["rnr"]["rnr_retries"]
        )

    def test_credit_mode_no_worse_sim_time(self, runs):
        assert (
            runs["credit"]["result"].elapsed_sim_time
            <= runs["rnr"]["result"].elapsed_sim_time
        )

    def test_credit_stall_metrics_booked(self, runs):
        metrics = runs["credit"]["result"].metrics
        assert metrics.get("flow_control.credit_stalls{rank=1}", 0) > 0
        assert metrics.get("flow_control.credit_grants{rank=1}", 0) > 0
        # And absent from the RNR run: gate instruments are lazy.
        assert not any("credit" in key for key in runs["rnr"]["result"].metrics)


class TestSrqSharedGate:
    def test_srq_pool_is_shared_across_senders(self):
        runtime = DSMRuntime(
            RuntimeConfig(world_size=3, flow_control="credit")
        )
        runtime.declare_array(
            "inbox", 8, policy=PlacementPolicy.OWNER, owner=2, initial=0
        )

        def sender(api):
            request = api.isend(2, 10 + api.rank, symbol="inbox")
            yield from api.wait(request)

        def server(api):
            api.create_srq()
            for slot in range(2):
                api.post_srq_recv("inbox", index=slot)
            done = 0
            while done < 2:
                completions = yield from api.wait_recv(1)
                done += len(completions)

        runtime.set_program(0, sender)
        runtime.set_program(1, sender)
        runtime.set_program(2, server)
        runtime.run()
        context = runtime.verbs_contexts[2]
        gate_a = context.credit_gate(0)
        gate_b = context.credit_gate(1)
        assert gate_a is gate_b, "SRQ-backed peers share one credit pool"

    def test_credit_stall_span_recorded_under_tracing(self):
        runtime = saturating_runtime("credit")
        runtime.sim.obs.configure(trace_spans=True)
        runtime.run()
        stalls = [
            event
            for event in runtime.sim.obs.spans.events()
            if event.get("name") == "credit_stall"
        ]
        assert stalls, "stalled senders must render credit_stall spans"
