"""The UD service level: drops, duplicates, reorders — and sound verdicts.

The transport knob's contracts:

* **Validation** — ``transport`` is ``"rc"`` or ``"ud"``; the runtime knob
  follows the NIC config and conflicting explicit values are rejected.
* **Quiet-fabric equivalence** — UD under a fabric that drops nothing is
  byte-for-byte the RC execution: same verdicts, same final memory, same
  elapsed sim-time, on the whole labelled pattern corpus.
* **Drop/retransmit** — a dropped datagram arms the retransmission timer
  and is re-sent with a fresh sequence number; the lost sequence is a
  permanent gap that exactly one receiver-driven resync repairs.
* **Resync edge cases** — a dropped resync *request* is re-requested after
  the deadline; a dropped resync *reply* likewise; duplicated frames are
  absorbed idempotently; a sparse frame reordered across a resync boundary
  arrives stale and triggers its own recovery — and through all of it the
  verdict matches the RC run of the same program.
* **Exhaustion** — burning the whole retransmission budget surfaces as a
  failed ``UD_DELIVERY_EXCEEDED`` work completion, and the failed
  operation's cell lock is released (no quiescence leak).
"""

import pytest

from repro.explore.controller import PassthroughStrategy, ScheduleController
from repro.net.ud_transport import (
    TRANSPORT_MODES,
    UdEndpoint,
    validate_transport,
)
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.verbs.work import CompletionStatus
from repro.workloads.racy_patterns import pattern_corpus, rmw_pattern_corpus

from tests.detectors.differential import race_digest


# -- forcing strategies --------------------------------------------------------------


class ForcedFates(PassthroughStrategy):
    """Script datagram fates per message kind: ``{kind: {index: fate}}``.

    Indices count datagrams of that kind in fate-decision order; unlisted
    datagrams deliver.  ``delays`` scripts the reorder decision the same
    way (extra unclamped flight time).
    """

    def __init__(self, fates=None, delays=None):
        self.fates = fates or {}
        self.delays = delays or {}
        self._fate_counts = {}
        self._delay_counts = {}

    def _scripted(self, table, counts, message, default):
        kind = message.kind.value
        index = counts.get(kind, 0)
        counts[kind] = index + 1
        return table.get(kind, {}).get(index, default)

    def choose_datagram_fate(self, key, message, source, destination):
        return self._scripted(self.fates, self._fate_counts, message, 0), 3

    def choose_datagram_delay(self, key, message, source, destination):
        return self._scripted(self.delays, self._delay_counts, message, 0.0), 2

    def describe(self):
        return "forced-fates"


def controlled(runtime, strategy):
    runtime.sim.install_controller(ScheduleController(strategy))
    return runtime


# -- workloads -----------------------------------------------------------------------


def sparse_wire_factory(seed=0, transport="ud"):
    """Puts on a sparse clock wire, plus one guaranteed race.

    Rank 0's put storm on a delta-encoded clock wire means every datagram
    carries a sparse frame, so a dropped or reordered datagram genuinely
    breaks the receiver's wire view and forces the resync subprotocol (not
    just byte shuffling).  The race: rank 0 reads ``shared[0]`` before the
    storm, rank 2 overwrites it afterwards — and since rank 2 receives no
    message at all, no causal chain can ever order the write after the
    read, whatever the fabric does to rank 0's datagrams."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=3,
            seed=seed,
            latency="constant",
            clock_transport="piggyback",
            clock_wire="delta",
            transport=transport,
        )
    )
    runtime.declare_array("cells", 4, owner=1, initial=0)
    runtime.declare_array("shared", 1, owner=1, initial=0)

    def prober(api):
        seen = yield from api.get("shared", index=0)
        api.private.write("observed", seen)
        for step in range(6):
            yield from api.put("cells", step, index=step % 4)

    def owner(api):
        yield from api.compute(1.0)

    def late_writer(api):
        yield from api.compute(300.0)
        yield from api.put("shared", 7, index=0)

    runtime.set_program(0, prober)
    runtime.set_program(1, owner)
    runtime.set_program(2, late_writer)
    return runtime


def verdict(result):
    """The transport-invariant view: races (times excluded) + final memory."""
    races = []
    for record in result.races.records():
        fields = race_digest(record)
        del fields["time"]
        races.append(fields)
    return {
        "races": races,
        "final": {s: [repr(v) for v in vals]
                  for s, vals in sorted(result.final_shared_values.items())},
    }


# -- validation ----------------------------------------------------------------------


class TestValidation:
    def test_accepts_both_service_levels(self):
        assert validate_transport("rc") == "rc"
        assert validate_transport("ud") == "ud"
        assert TRANSPORT_MODES == ("rc", "ud")

    @pytest.mark.parametrize("bad", ["uc", "RC", "", None, 3])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="transport"):
            validate_transport(bad)

    def test_runtime_knob_follows_the_nic_config(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        assert runtime.config.transport == "rc"
        assert runtime.config.nic.transport == "rc"

    def test_runtime_knob_propagates_to_the_nic(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2, transport="ud"))
        assert runtime.config.nic.transport == "ud"
        for nic in runtime.nics:
            assert nic.config.transport == "ud"

    def test_conflicting_explicit_values_are_rejected(self):
        from repro.net.nic import NICConfig

        with pytest.raises(ValueError, match="conflicting transports"):
            DSMRuntime(
                RuntimeConfig(
                    world_size=2, transport="rc", nic=NICConfig(transport="ud")
                )
            )

    def test_run_result_records_the_transport(self):
        result = sparse_wire_factory(transport="ud").run()
        assert result.transport == "ud"
        assert sparse_wire_factory(transport="rc").run().transport == "rc"


# -- quiet-fabric equivalence --------------------------------------------------------


class TestQuietFabricEquivalence:
    """UD with nothing dropped/duplicated/reordered IS the RC execution."""

    @pytest.mark.parametrize(
        "pattern",
        pattern_corpus() + rmw_pattern_corpus(),
        ids=lambda p: p.name,
    )
    def test_corpus_verdicts_and_timing_match_rc(self, pattern):
        rc = pattern.build(0)
        ud = pattern.build(0)
        ud.set_transport("ud")
        rc_result, ud_result = rc.run(), ud.run()
        assert verdict(ud_result) == verdict(rc_result)
        assert ud_result.elapsed_sim_time == rc_result.elapsed_sim_time

    def test_sequences_are_assigned_but_nothing_is_dropped(self):
        runtime = sparse_wire_factory()
        result = runtime.run()
        stats = runtime.clock_transport_stats()
        assert stats.ud_datagrams > 0
        assert stats.ud_dropped == 0
        assert stats.ud_retransmits == 0
        assert stats.ud_resyncs == 0
        assert result.race_count >= 1  # the seeded shared[0] race

    def test_rc_mode_sends_no_datagrams(self):
        runtime = sparse_wire_factory(transport="rc")
        runtime.run()
        assert runtime.clock_transport_stats().ud_datagrams == 0


# -- drop / retransmit / resync ------------------------------------------------------


class TestDropAndResync:
    def test_dropped_datagram_is_retransmitted_with_a_fresh_sequence(self):
        runtime = controlled(
            sparse_wire_factory(), ForcedFates(fates={"put_data": {0: 1}})
        )
        result = runtime.run()
        stats = runtime.clock_transport_stats()
        assert stats.ud_dropped == 1
        assert stats.ud_retransmits == 1
        # The retransmission carries a fresh sparse frame patched against
        # the dropped (never-seen) one, so the receiver sees a gap and runs
        # exactly one recovery round trip.
        assert stats.ud_resyncs == 1
        assert stats.ud_resync_requests == 1
        assert verdict(result) == verdict(sparse_wire_factory(transport="rc").run())

    def test_drop_charges_the_fabric_and_arms_the_timer(self):
        runtime = controlled(
            sparse_wire_factory(), ForcedFates(fates={"put_data": {0: 1}})
        )
        baseline = sparse_wire_factory()
        runtime.run(), baseline.run()
        channel = runtime.fabric.ud_channels()[(0, 1)]
        quiet = baseline.fabric.ud_channels()[(0, 1)]
        assert channel.stats.dropped == 1
        # The lost datagram's bytes left the sender: the channel accounts
        # the extra retransmission plus the resync's full-frame reply
        # (the request travels the reverse channel).
        assert channel.stats.messages == quiet.stats.messages + 2
        assert channel.stats.bytes > quiet.stats.bytes

    def test_resync_stamps_the_historical_clock_not_the_current_one(self):
        """The verdict on the racy cell must survive the recovery: a resync
        answered with the sender's *current* clock would manufacture a
        happens-before edge and silently mask the race."""
        runtime = controlled(
            sparse_wire_factory(),
            ForcedFates(fates={"put_data": {0: 1, 3: 1, 5: 1}}),
        )
        result = runtime.run()
        assert runtime.clock_transport_stats().ud_resyncs >= 1
        assert verdict(result) == verdict(sparse_wire_factory(transport="rc").run())

    def test_decision_log_records_drops_and_replays(self):
        from repro.explore.runner import run_schedule
        from repro.explore.controller import ReplayStrategy

        forced = run_schedule(
            lambda seed: sparse_wire_factory(seed),
            0,
            ForcedFates(fates={"put_data": {0: 1}}),
        )
        drops = [d for d in forced.decisions.entries
                 if d is not None and d.kind == "drop"]
        assert any(d.choice == 1 for d in drops)
        assert all(d.key.startswith("drop:") for d in drops)
        replayed = run_schedule(
            lambda seed: sparse_wire_factory(seed), 0,
            ReplayStrategy(forced.decisions),
        )
        assert replayed.fingerprint == forced.fingerprint
        assert replayed.decisions == forced.decisions


class TestResyncEdgeCases:
    def test_dropped_resync_request_is_rerequested_after_the_deadline(self):
        runtime = controlled(
            sparse_wire_factory(),
            ForcedFates(fates={
                "put_data": {0: 1},          # force the gap
                "ud_resync_request": {0: 1},  # then lose the first request
            }),
        )
        result = runtime.run()
        stats = runtime.clock_transport_stats()
        assert stats.ud_resync_requests == 2
        assert stats.ud_resyncs == 1
        assert verdict(result) == verdict(sparse_wire_factory(transport="rc").run())

    def test_dropped_resync_reply_is_recovered_by_rerequesting(self):
        runtime = controlled(
            sparse_wire_factory(),
            ForcedFates(fates={
                "put_data": {0: 1},
                "ud_resync_full": {0: 1},     # lose the first full frame
            }),
        )
        result = runtime.run()
        stats = runtime.clock_transport_stats()
        # The receiver cannot tell a lost request from a lost reply: it
        # simply re-requests, and the second round trip lands.
        assert stats.ud_resync_requests == 2
        assert stats.ud_resyncs == 1
        assert verdict(result) == verdict(sparse_wire_factory(transport="rc").run())

    def test_duplicated_full_frames_are_absorbed_idempotently(self):
        runtime = controlled(
            sparse_wire_factory(),
            ForcedFates(fates={"put_data": {0: 2, 2: 2}}),
        )
        result = runtime.run()
        stats = runtime.clock_transport_stats()
        assert stats.ud_duplicates == 2
        assert stats.ud_resyncs == 0, "a duplicate must not look like a gap"
        channel = runtime.fabric.ud_channels()[(0, 1)]
        assert channel.stats.duplicated == 2
        assert verdict(result) == verdict(sparse_wire_factory(transport="rc").run())

    def test_reorder_across_a_resync_boundary_arrives_stale(self):
        """Delay a sparse frame past a later frame's gap-resync: when the
        laggard finally lands its sequence is *behind* the resynced view.
        It must be recovered through its own round trip — never stamped as
        a patch against the wrong base — and the verdict must hold."""

        def factory(seed=0, transport="ud"):
            runtime = DSMRuntime(
                RuntimeConfig(
                    world_size=2,
                    seed=seed,
                    latency="constant",
                    clock_transport="piggyback",
                    clock_wire="delta",
                    transport=transport,
                )
            )
            runtime.declare_array("cells", 4, owner=0, initial=0)
            runtime.declare_array("mine", 2, owner=1, initial=7)

            def reader(api):
                yield from api.compute(3.0)
                yield from api.get("mine", index=0)

            def writer(api):
                # Two puts on the P1->P0 channel: the first full frame
                # lands, the second (sparse, seq 2) is delayed past the
                # GET_REPLY (sparse, seq 3) the reader's get triggers.
                yield from api.put("cells", 10, index=0)
                yield from api.put("cells", 20, index=1)

            runtime.set_program(0, reader)
            runtime.set_program(1, writer)
            return runtime

        runtime = controlled(
            factory(), ForcedFates(delays={"put_data": {1: 50.0}})
        )
        result = runtime.run()
        stats = runtime.clock_transport_stats()
        assert stats.ud_stale_frames == 1
        # Two recoveries: the reply's gap (seq 3 over the in-flight seq 2),
        # then the stale laggard itself.
        assert stats.ud_resyncs == 2
        channel = runtime.fabric.ud_channels()[(1, 0)]
        assert channel.stats.reordered >= 1
        assert verdict(result) == verdict(factory(transport="rc").run())

    def test_view_never_rewinds_below_a_resynced_sequence(self):
        endpoint = UdEndpoint(0)
        assert endpoint.absorb(1, 1, "full") == "exact"
        assert endpoint.absorb(1, 3, "sparse") == "gap"
        endpoint.mark_resynced(1, 3)
        assert endpoint.view_seq(1) == 3
        # The reordered straggler from before the boundary: stale, and
        # recovering it must not rewind the view later frames patch.
        assert endpoint.absorb(1, 2, "sparse") == "stale"
        endpoint.mark_resynced(1, 2)
        assert endpoint.view_seq(1) == 3
        assert endpoint.absorb(1, 4, "sparse") == "exact"

    def test_duplicate_absorb_is_an_idempotent_noop(self):
        endpoint = UdEndpoint(0)
        assert endpoint.absorb(1, 1, "full") == "exact"
        assert endpoint.absorb(1, 1, "full") == "duplicate"
        assert endpoint.absorb(1, 1, "sparse") == "duplicate"
        assert endpoint.view_seq(1) == 1


# -- retransmission exhaustion -------------------------------------------------------


class TestExhaustion:
    def _exhausting_runtime(self):
        """A verbs put whose every datagram the fabric eats."""
        runtime = DSMRuntime(
            RuntimeConfig(
                world_size=2,
                seed=0,
                latency="constant",
                clock_transport="piggyback",
                clock_wire="delta",
                transport="ud",
            )
        )
        runtime.config.nic.ud_max_retransmits = 2
        runtime.declare_array("x", 2, owner=1, initial=0)

        def producer(api):
            doomed = api.iput("x", 111, index=0)
            (completion,) = yield from api.wait(doomed, raise_on_error=False)
            api.private.write("status", completion.status.value)
            # The failed put's cell lock must have been released: a fresh
            # put to the SAME cell (fabric now quiet) completes.
            healthy = api.iput("x", 222, index=0)
            (retry,) = yield from api.wait(healthy, raise_on_error=False)
            api.private.write("retry_status", retry.status.value)

        def idle(api):
            yield from api.compute(1.0)

        runtime.set_program(0, producer)
        runtime.set_program(1, idle)
        return runtime

    def test_exhaustion_surfaces_as_a_failed_completion(self):
        runtime = controlled(
            self._exhausting_runtime(),
            # Budget 2: initial send + 2 retransmits all dropped => fail.
            ForcedFates(fates={"put_data": {0: 1, 1: 1, 2: 1}}),
        )
        result = runtime.run()
        private = runtime.private_memories[0].snapshot()
        assert private["status"] == CompletionStatus.UD_DELIVERY_EXCEEDED.value
        assert private["retry_status"] == CompletionStatus.SUCCESS.value
        assert result.final_shared_values["x"] == [222, 0]
        stats = runtime.clock_transport_stats()
        assert stats.ud_dropped == 3
        assert stats.ud_retransmits == 2

    def test_budget_spent_one_short_of_exhaustion_succeeds(self):
        runtime = controlled(
            self._exhausting_runtime(),
            ForcedFates(fates={"put_data": {0: 1, 1: 1}}),
        )
        runtime.run()
        private = runtime.private_memories[0].snapshot()
        assert private["status"] == CompletionStatus.SUCCESS.value
