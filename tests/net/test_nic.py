"""Unit tests for the RDMA NIC: message decomposition, locks, detection hooks."""

import pytest

from repro.core.detector import DetectorConfig, DualClockRaceDetector
from repro.memory.address import GlobalAddress
from repro.memory.locks import MemoryLockTable
from repro.memory.public import PublicMemory
from repro.net.fabric import Fabric
from repro.net.latency import ConstantLatency
from repro.net.message import MessageKind
from repro.net.nic import NIC, NICConfig
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.trace.recorder import TraceRecorder


class Cluster:
    """Minimal hand-wired cluster of NICs for unit testing."""

    def __init__(self, world_size=3, nic_config=None, detector_config=None, with_detector=True):
        self.sim = Simulator(seed=0)
        self.fabric = Fabric(self.sim, Topology.complete(world_size), ConstantLatency(base=1.0))
        self.recorder = TraceRecorder(world_size)
        self.detector = (
            DualClockRaceDetector(world_size, config=detector_config or DetectorConfig())
            if with_detector
            else None
        )
        self.memories = [PublicMemory(rank, 32) for rank in range(world_size)]
        self.locks = [MemoryLockTable(self.sim, rank) for rank in range(world_size)]
        self.nics = [
            NIC(
                self.sim, rank, self.fabric, self.memories[rank], self.locks[rank],
                detector=self.detector, config=nic_config or NICConfig(),
                recorder=self.recorder,
            )
            for rank in range(world_size)
        ]
        for nic in self.nics:
            for peer in self.nics:
                if peer is not nic:
                    nic.register_peer(peer)

    def drive(self, generator):
        """Run one operation generator to completion; returns its result."""
        holder = {}

        def wrapper():
            holder["result"] = yield from generator
        self.sim.process(wrapper())
        self.sim.run()
        return holder["result"]


class TestMessageDecomposition:
    def test_put_uses_exactly_one_data_message(self):
        """Figure 2: put involves one message from source to destination."""
        cluster = Cluster()
        target = GlobalAddress(1, 0)
        result = cluster.drive(cluster.nics[2].rdma_put("value", target))
        assert result.data_messages == 1
        assert cluster.fabric.message_count(MessageKind.PUT_DATA) == 1
        assert cluster.fabric.message_count(MessageKind.GET_REQUEST) == 0
        assert cluster.memories[1].peek(target) == "value"

    def test_get_uses_exactly_two_data_messages(self):
        """Figure 2: get involves a request and a data reply."""
        cluster = Cluster()
        target = GlobalAddress(1, 0)
        cluster.memories[1].write(target, "stored")
        result = cluster.drive(cluster.nics[2].rdma_get(target))
        assert result.value == "stored"
        assert result.data_messages == 2
        assert cluster.fabric.message_count(MessageKind.GET_REQUEST) == 1
        assert cluster.fabric.message_count(MessageKind.GET_REPLY) == 1

    def test_lock_traffic_is_charged_when_configured(self):
        cluster = Cluster()
        cluster.drive(cluster.nics[2].rdma_put("v", GlobalAddress(1, 0)))
        assert cluster.fabric.message_count(MessageKind.LOCK_REQUEST) == 1
        assert cluster.fabric.message_count(MessageKind.LOCK_GRANT) == 1
        assert cluster.fabric.message_count(MessageKind.UNLOCK) == 1

    def test_lock_traffic_can_be_piggybacked(self):
        cluster = Cluster(nic_config=NICConfig(charge_lock_messages=False))
        cluster.drive(cluster.nics[2].rdma_put("v", GlobalAddress(1, 0)))
        assert cluster.fabric.stats.lock_messages == 0

    def test_detection_round_trip_charged_only_when_enabled(self):
        with_detection = Cluster()
        with_detection.drive(with_detection.nics[2].rdma_put("v", GlobalAddress(1, 0)))
        assert with_detection.fabric.stats.detection_messages == 2

        without_detection = Cluster(with_detector=False)
        without_detection.drive(without_detection.nics[2].rdma_put("v", GlobalAddress(1, 0)))
        assert without_detection.fabric.stats.detection_messages == 0

    def test_detection_messages_piggybacked_when_configured(self):
        cluster = Cluster(nic_config=NICConfig(charge_detection_messages=False))
        cluster.drive(cluster.nics[2].rdma_put("v", GlobalAddress(1, 0)))
        assert cluster.fabric.stats.detection_messages == 0
        # The data message grew by the piggybacked clock payload.
        assert cluster.fabric.stats.data_bytes > 32 + 8


class TestLockSerialization:
    def test_put_is_delayed_behind_get_on_same_datum(self):
        """Figure 3: the put waits for the lock held by the in-flight get."""
        cluster = Cluster()
        target = GlobalAddress(1, 0)
        cluster.memories[1].write(target, "initial")
        results = {}

        def reader():
            results["get"] = yield from cluster.nics[2].rdma_get(target)

        def writer():
            # Give the get a head start so it owns the lock when the put arrives.
            yield cluster.sim.timeout(1.5)
            results["put"] = yield from cluster.nics[0].rdma_put("new", target)

        cluster.sim.process(reader())
        cluster.sim.process(writer())
        cluster.sim.run()
        assert results["get"].value == "initial"
        assert cluster.locks[1].contended_acquisitions >= 1
        # The put only took effect after the get completed.
        assert results["put"].end_time > results["get"].end_time
        assert cluster.memories[1].peek(target) == "new"

    def test_operations_on_different_cells_do_not_contend(self):
        cluster = Cluster()
        first, second = GlobalAddress(1, 0), GlobalAddress(1, 1)

        def op(nic, address):
            yield from nic.rdma_put("x", address)

        cluster.sim.process(op(cluster.nics[0], first))
        cluster.sim.process(op(cluster.nics[2], second))
        cluster.sim.run()
        assert cluster.locks[1].contended_acquisitions == 0

    def test_locks_released_after_operations(self):
        cluster = Cluster()
        cluster.drive(cluster.nics[0].rdma_put("v", GlobalAddress(1, 3)))
        cluster.sim.run()
        cluster.locks[1].assert_quiescent()


class TestLocalAccesses:
    def test_local_accesses_move_no_messages(self):
        cluster = Cluster()
        address = GlobalAddress(1, 0)
        cluster.drive(cluster.nics[1].local_write(address, 7))
        value_result = cluster.drive(cluster.nics[1].local_read(address))
        assert value_result.value == 7
        assert cluster.fabric.stats.total_messages == 0
        assert cluster.nics[1].local_writes == 1 and cluster.nics[1].local_reads == 1

    def test_local_access_to_remote_address_rejected(self):
        from repro.sim.events import SimulationError

        cluster = Cluster()
        # The error is raised inside the simulated process and surfaces as the
        # kernel's process-failure error, with the original cause chained.
        with pytest.raises(SimulationError, match="local_write"):
            cluster.drive(cluster.nics[0].local_write(GlobalAddress(1, 0), 1))

    def test_local_accesses_still_feed_the_detector(self):
        """Local and remote public accesses are treated alike (Section III-A)."""
        cluster = Cluster()
        address = GlobalAddress(1, 0)
        cluster.drive(cluster.nics[1].local_read(address))
        result = cluster.drive(cluster.nics[0].rdma_put("v", address))
        assert result.raced
        assert cluster.detector.race_count() == 1


class TestTracing:
    def test_recorder_sees_every_access(self):
        cluster = Cluster()
        target = GlobalAddress(1, 0)
        cluster.drive(cluster.nics[2].rdma_put("v", target, symbol="x"))
        cluster.drive(cluster.nics[0].rdma_get(target, symbol="x"))
        accesses = cluster.recorder.accesses()
        assert len(accesses) == 2
        assert accesses[0].operation == "put" and accesses[1].operation == "get"
        assert {a.symbol for a in accesses} == {"x"}

    def test_counters_track_issued_operations(self):
        cluster = Cluster()
        target = GlobalAddress(1, 0)
        cluster.drive(cluster.nics[2].rdma_put("v", target))
        cluster.drive(cluster.nics[2].rdma_get(target))
        assert cluster.nics[2].puts_issued == 1
        assert cluster.nics[2].gets_issued == 1
        assert cluster.nics[1].remote_ops_serviced == 2


class TestValidation:
    def test_mismatched_memory_rank_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim, Topology.complete(2), ConstantLatency())
        memory = PublicMemory(1, 8)
        locks = MemoryLockTable(sim, 0)
        with pytest.raises(ValueError):
            NIC(sim, 0, fabric, memory, locks)

    def test_notification_delivers_payload(self):
        cluster = Cluster()
        message = cluster.drive(cluster.nics[0].send_notification(2, payload="hello"))
        assert message.payload == "hello"
        assert message.destination == 2
