"""Adaptive clock-wire resync: per-channel cadence tuning, exact decode.

The adaptive cadence's contracts:

* **Validation** — the knob is a positive count or ``"adaptive"``.
* **Exactness** — every frame still decodes to the exact clock, whatever
  the cadence does (the encode/decode round trip is verified per frame by
  the transport, so a whole-run comparison pins verdicts and bytes).
* **Adaptation direction** — a channel whose sparse frames are tiny
  stretches its period (fewer full resyncs); one whose sparse frames are
  nearly full-sized tightens it, within the [MIN, MAX] clamp.
* **Deferral soundness** — a controller-deferred resync changes only byte
  accounting, never a decoded clock.
"""

import pytest

from repro.net.clock_transport import (
    ADAPTIVE_RESYNC_MAX,
    ADAPTIVE_RESYNC_MIN,
    ADAPTIVE_RESYNC_START,
    ClockWireDecoder,
    ClockWireEncoder,
    validate_clock_wire_resync,
)
from repro.runtime.runtime import DSMRuntime, RuntimeConfig


class TestValidation:
    def test_accepts_counts_and_adaptive(self):
        assert validate_clock_wire_resync(1) == 1
        assert validate_clock_wire_resync(512) == 512
        assert validate_clock_wire_resync("adaptive") == "adaptive"

    @pytest.mark.parametrize("bad", [0, -4, True, False, 2.5, "auto", None])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="clock_wire_resync"):
            validate_clock_wire_resync(bad)

    def test_runtime_config_accepts_adaptive(self):
        runtime = DSMRuntime(
            RuntimeConfig(
                world_size=2, clock_wire="delta", clock_wire_resync="adaptive"
            )
        )
        assert runtime.config.nic.clock_wire_resync == "adaptive"
        assert runtime.nics[0].clock_transport.adaptive_resync


def drive(encoder, decoder, clocks):
    """Round-trip a clock sequence; returns (frames, total_bytes)."""
    frames = []
    for clock in clocks:
        frame = encoder.encode(clock)
        assert decoder.decode(frame) == tuple(clock), (
            "every frame must decode to the exact clock"
        )
        frames.append(frame)
    return frames, sum(f.wire_bytes for f in frames)


class TestAdaptationDirection:
    def test_stable_channel_stretches_its_period(self):
        """One slowly-advancing component => tiny sparse frames => raise."""
        world = 16
        encoder = ClockWireEncoder(
            world, "delta", resync_period=ADAPTIVE_RESYNC_START, adaptive=True
        )
        decoder = ClockWireDecoder(world, "delta")
        clock = [0] * world
        clocks = []
        for _ in range(3 * ADAPTIVE_RESYNC_START):
            clock[0] += 1
            clocks.append(tuple(clock))
        drive(encoder, decoder, clocks)
        assert encoder.period_raises >= 1
        assert encoder.resync_period > ADAPTIVE_RESYNC_START
        assert encoder.resync_period <= ADAPTIVE_RESYNC_MAX

    def test_volatile_channel_tightens_its_period(self):
        """Most components jumping => sparse frames cost ~full => lower.

        Three of four truncated components changing costs 32 wire bytes
        against a 33-byte full frame — still sparse, but a ~0.97 realized
        ratio, well over ADAPTIVE_RATIO_HIGH.  (All four changing would
        not beat the full encoding at all and never enter the window.)
        """
        world = 4
        encoder = ClockWireEncoder(
            world, "truncated", resync_period=ADAPTIVE_RESYNC_START, adaptive=True
        )
        decoder = ClockWireDecoder(world, "truncated")
        clock = [0] * world
        clocks = []
        for step in range(3 * ADAPTIVE_RESYNC_START):
            for component in range(3):
                clock[(step + component) % world] += 1
            clocks.append(tuple(clock))
        drive(encoder, decoder, clocks)
        assert encoder.period_lowers >= 1
        assert encoder.resync_period < ADAPTIVE_RESYNC_START
        assert encoder.resync_period >= ADAPTIVE_RESYNC_MIN

    def test_fixed_cadence_never_adapts(self):
        world = 8
        encoder = ClockWireEncoder(world, "delta", resync_period=16)
        decoder = ClockWireDecoder(world, "delta")
        clock = [0] * world
        clocks = []
        for _ in range(100):
            clock[0] += 1
            clocks.append(tuple(clock))
        drive(encoder, decoder, clocks)
        assert encoder.resync_period == 16
        assert encoder.period_raises == encoder.period_lowers == 0

    def test_adaptive_saves_bytes_on_a_stable_channel(self):
        """The point of the knob: fewer full frames than the fixed cadence."""
        world = 16
        clock = [0] * world
        clocks = []
        for _ in range(4 * ADAPTIVE_RESYNC_START):
            clock[0] += 1
            clocks.append(tuple(clock))
        fixed_frames, fixed_bytes = drive(
            ClockWireEncoder(world, "delta", resync_period=ADAPTIVE_RESYNC_START),
            ClockWireDecoder(world, "delta"),
            clocks,
        )
        adaptive_frames, adaptive_bytes = drive(
            ClockWireEncoder(
                world, "delta", resync_period=ADAPTIVE_RESYNC_START, adaptive=True
            ),
            ClockWireDecoder(world, "delta"),
            clocks,
        )
        full = lambda frames: sum(1 for f in frames if f.full)
        assert full(adaptive_frames) < full(fixed_frames)
        assert adaptive_bytes < fixed_bytes


class TestDeferral:
    def test_decider_defers_the_full_frame(self):
        world = 8
        deferrals = []

        def decide(since_resync, period):
            deferrals.append((since_resync, period))
            return 3 if len(deferrals) == 1 else 0

        encoder = ClockWireEncoder(
            world, "delta", resync_period=ADAPTIVE_RESYNC_MIN, adaptive=True,
            resync_decider=decide,
        )
        decoder = ClockWireDecoder(world, "delta")
        clock = [0] * world
        clocks = []
        for _ in range(3 * ADAPTIVE_RESYNC_MIN):
            clock[0] += 1
            clocks.append(tuple(clock))
        frames, _ = drive(encoder, decoder, clocks)
        assert deferrals, "a due resync must consult the decider"
        assert encoder.resyncs_deferred == 1
        # Soundness came free: drive() verified every decode already.
        assert sum(1 for f in frames if f.full) >= 1


class TestRuntimeIntegration:
    def _run(self, resync, world_size=8, seed=0):
        """One busy rank-0 → rank-1 channel in a wide world.

        With 8 ranks a delta frame on the busy channel patches ~2 of 8
        clock components — tiny against the 8-entry full frame — so the
        adaptive cadence should stretch its period.
        """
        runtime = DSMRuntime(
            RuntimeConfig(
                world_size=world_size,
                seed=seed,
                clock_transport="piggyback",
                clock_wire="delta",
                clock_wire_resync=resync,
            )
        )
        runtime.declare_array("cells", 4, owner=1, initial=0)

        def writer(api):
            for step in range(3 * ADAPTIVE_RESYNC_START):
                yield from api.put("cells", step, index=step % 4)

        def idle(api):
            yield from api.compute(1.0)

        runtime.set_program(0, writer)
        for rank in range(1, world_size):
            runtime.set_program(rank, idle)
        return runtime, runtime.run()

    def test_adaptive_run_verdict_identical_and_cheaper(self):
        _, fixed = self._run(ADAPTIVE_RESYNC_START)
        adaptive_runtime, adaptive = self._run("adaptive")
        assert adaptive.race_count == fixed.race_count
        assert adaptive.final_shared_values == fixed.final_shared_values
        state = adaptive_runtime.nics[0].clock_transport.wire_resync_state()
        assert state[1]["resync_period"] > ADAPTIVE_RESYNC_START
        assert state[1]["period_raises"] >= 1
        saved = "clock_transport.wire_bytes_saved{rank=0}"
        assert adaptive.metrics[saved] > fixed.metrics[saved], (
            "stretching the period on a stable channel must save clock bytes"
        )

    def test_volatile_runtime_channel_tightens(self):
        """At world 2 every delta frame patches both components — nearly
        full-sized — so the same workload drives the period DOWN."""
        runtime, result = self._run("adaptive", world_size=2)
        state = runtime.nics[0].clock_transport.wire_resync_state()
        assert state[1]["resync_period"] < ADAPTIVE_RESYNC_START
        assert state[1]["period_lowers"] >= 1
        assert result.clock_wire_resync == "adaptive"

    def test_provenance_records_the_cadence(self):
        _, result = self._run("adaptive", world_size=2)
        assert result.clock_wire_resync == "adaptive"
        _, fixed = self._run(32, world_size=2)
        assert fixed.clock_wire_resync == 32
