"""Unit tests for FIFO channels and the fabric's accounting."""

import pytest

from repro.net.channel import Channel
from repro.net.fabric import Fabric
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.message import Message, MessageKind
from repro.net.topology import Topology
from repro.sim.engine import Simulator


def make_message(message_id=0, kind=MessageKind.PUT_DATA, payload_bytes=8):
    return Message(
        message_id=message_id, kind=kind, source=0, destination=1,
        payload_bytes=payload_bytes,
    )


class TestChannel:
    def test_delivery_time_follows_latency_model(self):
        sim = Simulator()
        channel = Channel(sim, 0, 1, ConstantLatency(base=2.0), hops=3)
        event, stamped = channel.transmit(make_message())
        assert stamped.deliver_time == 6.0
        sim.run()
        assert event.processed and sim.now == 6.0

    def test_fifo_order_is_preserved_despite_jitter(self):
        sim = Simulator()
        # A wildly jittering model: later messages may draw shorter latencies.
        channel = Channel(sim, 0, 1, UniformLatency(sim.rng, low=0.1, high=10.0))
        deliveries = []
        for index in range(30):
            _event, stamped = channel.transmit(make_message(message_id=index))
            deliveries.append(stamped.deliver_time)
        assert deliveries == sorted(deliveries)

    def test_bandwidth_serializes_back_to_back_messages(self):
        sim = Simulator()
        channel = Channel(
            sim, 0, 1, ConstantLatency(base=1.0), bandwidth_bytes_per_time=10.0
        )
        _e1, first = channel.transmit(make_message(payload_bytes=68))   # 100 B -> 10 time units
        _e2, second = channel.transmit(make_message(payload_bytes=68))
        assert second.deliver_time > first.deliver_time
        assert second.deliver_time >= 20.0

    def test_stats_accumulate(self):
        sim = Simulator()
        channel = Channel(sim, 0, 1, ConstantLatency(base=1.0))
        channel.transmit(make_message())
        channel.transmit(make_message())
        assert channel.stats.messages == 2
        assert channel.stats.bytes == 2 * make_message().total_bytes
        assert channel.stats.mean_latency == 1.0

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Channel(Simulator(), 0, 1, ConstantLatency(), bandwidth_bytes_per_time=0)


class TestFabric:
    def make_fabric(self, world_size=3, topology=None):
        sim = Simulator()
        topology = topology or Topology.complete(world_size)
        return sim, Fabric(sim, topology, ConstantLatency(base=1.0))

    def test_send_assigns_ids_and_routes(self):
        sim, fabric = self.make_fabric()
        event, message = fabric.send(MessageKind.PUT_DATA, 0, 2, payload="v")
        assert message.message_id == 0
        _event2, message2 = fabric.send(MessageKind.GET_REQUEST, 1, 2)
        assert message2.message_id == 1
        sim.run()
        assert event.processed

    def test_stats_split_by_category(self):
        sim, fabric = self.make_fabric()
        fabric.send(MessageKind.PUT_DATA, 0, 1)
        fabric.send(MessageKind.GET_REQUEST, 0, 1)
        fabric.send(MessageKind.GET_REPLY, 1, 0)
        fabric.send(MessageKind.LOCK_REQUEST, 0, 1)
        fabric.send(MessageKind.CLOCK_FETCH, 0, 1)
        fabric.send(MessageKind.NOTIFY, 0, 1)
        stats = fabric.stats
        assert stats.data_messages == 3
        assert stats.lock_messages == 1
        assert stats.detection_messages == 1
        assert stats.other_messages == 1
        assert stats.total_messages == 6
        assert stats.total_bytes > 0
        as_dict = stats.as_dict()
        assert as_dict["total_messages"] == 6

    def test_message_count_by_kind(self):
        _sim, fabric = self.make_fabric()
        fabric.send(MessageKind.PUT_DATA, 0, 1)
        fabric.send(MessageKind.PUT_DATA, 0, 2)
        assert fabric.message_count(MessageKind.PUT_DATA) == 2
        assert fabric.message_count(MessageKind.GET_REPLY) == 0
        assert fabric.message_count() == 2

    def test_hop_count_scales_latency_on_ring(self):
        sim = Simulator()
        fabric = Fabric(sim, Topology.ring(6), ConstantLatency(base=1.0))
        _event, far = fabric.send(MessageKind.PUT_DATA, 0, 3)
        assert far.deliver_time == 3.0
        _event, near = fabric.send(MessageKind.PUT_DATA, 0, 1)
        assert near.deliver_time == 1.0

    def test_channels_are_cached_per_pair(self):
        _sim, fabric = self.make_fabric()
        first = fabric.channel(0, 1)
        assert fabric.channel(0, 1) is first
        assert fabric.channel(1, 0) is not first
        assert len(fabric.channels()) == 2

    def test_self_messages_deliver_immediately(self):
        sim, fabric = self.make_fabric()
        _event, message = fabric.send(MessageKind.NOTIFY, 1, 1)
        assert message.deliver_time == 0.0

    def test_reset_stats(self):
        _sim, fabric = self.make_fabric()
        fabric.send(MessageKind.PUT_DATA, 0, 1)
        fabric.reset_stats()
        assert fabric.stats.total_messages == 0
        assert fabric.message_count(MessageKind.PUT_DATA) == 0

    def test_invalid_rank_rejected(self):
        _sim, fabric = self.make_fabric(world_size=2)
        with pytest.raises(ValueError):
            fabric.send(MessageKind.PUT_DATA, 0, 5)
