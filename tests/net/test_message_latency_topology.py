"""Unit tests for messages, latency models and topologies."""

import pytest

from repro.net.latency import ConstantLatency, LogGPLatency, UniformLatency
from repro.net.message import DEFAULT_CELL_BYTES, HEADER_BYTES, Message, MessageKind
from repro.net.topology import Topology
from repro.sim.rng import RandomStreams


def make_message(kind=MessageKind.PUT_DATA, payload_bytes=8):
    return Message(
        message_id=0, kind=kind, source=0, destination=1, payload_bytes=payload_bytes
    )


class TestMessage:
    def test_total_bytes_includes_header(self):
        assert make_message(payload_bytes=8).total_bytes == HEADER_BYTES + 8

    def test_latency_property(self):
        message = Message(
            message_id=0, kind=MessageKind.PUT_DATA, source=0, destination=1,
            send_time=2.0, deliver_time=5.5,
        )
        assert message.latency == 3.5

    def test_kind_categories_are_disjoint(self):
        for kind in MessageKind:
            categories = [kind.is_data, kind.is_lock, kind.is_detection]
            assert sum(categories) <= 1
        assert MessageKind.PUT_DATA.is_data
        assert MessageKind.GET_REQUEST.is_data and MessageKind.GET_REPLY.is_data
        assert MessageKind.LOCK_REQUEST.is_lock
        assert MessageKind.CLOCK_FETCH.is_detection


class TestLatencyModels:
    def test_constant_scales_with_hops(self):
        model = ConstantLatency(base=2.0)
        assert model.latency(make_message(), hops=1) == 2.0
        assert model.latency(make_message(), hops=3) == 6.0

    def test_constant_per_byte_component(self):
        model = ConstantLatency(base=1.0, per_byte=0.1)
        expected = 1.0 + 0.1 * (HEADER_BYTES + 8)
        assert model.latency(make_message()) == pytest.approx(expected)

    def test_uniform_within_bounds_and_reproducible(self):
        streams = RandomStreams(seed=5)
        model = UniformLatency(streams, low=1.0, high=2.0)
        draws = [model.latency(make_message()) for _ in range(50)]
        assert all(1.0 <= value <= 2.0 for value in draws)
        again = UniformLatency(RandomStreams(seed=5), low=1.0, high=2.0)
        assert [again.latency(make_message()) for _ in range(50)] == draws

    def test_uniform_rejects_reversed_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(RandomStreams(0), low=2.0, high=1.0)

    def test_loggp_components(self):
        model = LogGPLatency(L=1.0, o_send=0.5, o_recv=0.5, G=0.01)
        message = make_message(payload_bytes=68)  # 100 total bytes
        assert model.latency(message, hops=2) == pytest.approx(2.0 + 1.0 + 1.0)

    def test_loggp_jitter_adds_bounded_noise(self):
        streams = RandomStreams(seed=1)
        model = LogGPLatency(L=1.0, jitter=streams, jitter_fraction=0.1)
        base = LogGPLatency(L=1.0).latency(make_message())
        for _ in range(20):
            value = model.latency(make_message())
            assert base <= value <= base * 1.1 + 1e-9

    def test_describe_mentions_parameters(self):
        assert "2.0" in ConstantLatency(base=2.0).describe()
        assert "LogGP" in LogGPLatency().describe()


class TestTopology:
    def test_complete_graph_is_one_hop_everywhere(self):
        topology = Topology.complete(5)
        assert topology.world_size == 5
        assert topology.diameter() == 1
        assert topology.hops(0, 4) == 1
        assert topology.hops(2, 2) == 0

    def test_ring_hop_counts(self):
        topology = Topology.ring(6)
        assert topology.hops(0, 1) == 1
        assert topology.hops(0, 3) == 3
        assert topology.diameter() == 3

    def test_star_routes_through_center(self):
        topology = Topology.star(5, center=0)
        assert topology.hops(1, 2) == 2
        assert topology.hops(0, 3) == 1
        assert topology.degree(0) == 4

    def test_mesh_and_torus(self):
        mesh = Topology.mesh2d(3, 3)
        torus = Topology.mesh2d(3, 3, torus=True)
        assert mesh.world_size == torus.world_size == 9
        # Opposite corners: 4 hops on the mesh, 2 on the torus (wraparound).
        assert mesh.hops(0, 8) == 4
        assert torus.hops(0, 8) == 2

    def test_hypercube(self):
        topology = Topology.hypercube(3)
        assert topology.world_size == 8
        assert topology.degree(0) == 3
        assert topology.diameter() == 3

    def test_ring_small_sizes(self):
        assert Topology.ring(1).world_size == 1
        assert Topology.ring(2).hops(0, 1) == 1

    def test_neighbors_sorted(self):
        topology = Topology.ring(4)
        assert topology.neighbors(0) == [1, 3]

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            Topology.complete(3).hops(0, 3)

    def test_average_hops_between_one_and_diameter(self):
        topology = Topology.ring(8)
        assert 1.0 <= topology.average_hops() <= topology.diameter()
