"""The clock wire formats reconstruct the exact clock — always.

Property acceptance for the wire-format layer: for *arbitrary* clock
sequences (monotone or not, resync boundaries included), encoding through
``delta``/``truncated`` and decoding on the other end of the channel yields
the input clock bit for bit.  That identity is what makes the compressed
formats verdict-identical to ``full`` by construction — the detector always
checks with the clock the receiver would reconstruct.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.clock_transport import (
    BYTES_PER_ENTRY,
    CLOCK_WIRE_FORMATS,
    WIRE_COUNT_BYTES,
    WIRE_DELTA_BYTES,
    WIRE_RANK_BYTES,
    WIRE_TAG_BYTES,
    ClockWireDecoder,
    ClockWireEncoder,
    validate_clock_wire,
)

SPARSE_FORMATS = ("delta", "truncated")


def clock_sequences(max_world=12, max_len=30):
    """Arbitrary sequences of same-length clocks (not necessarily monotone)."""
    return st.integers(min_value=1, max_value=max_world).flatmap(
        lambda world: st.lists(
            st.lists(
                st.integers(min_value=0, max_value=2**40),
                min_size=world,
                max_size=world,
            ),
            min_size=1,
            max_size=max_len,
        )
    )


class TestRoundTripProperty:
    @pytest.mark.parametrize("wire_format", SPARSE_FORMATS)
    @settings(max_examples=60, deadline=None)
    @given(sequence=clock_sequences(), resync=st.integers(min_value=1, max_value=5))
    def test_encode_decode_reconstructs_every_clock(
        self, wire_format, sequence, resync
    ):
        world = len(sequence[0])
        encoder = ClockWireEncoder(world, wire_format, resync_period=resync)
        decoder = ClockWireDecoder(world, wire_format)
        for clock in sequence:
            frame = encoder.encode(clock)
            assert decoder.decode(frame) == tuple(clock)

    @settings(max_examples=30, deadline=None)
    @given(sequence=clock_sequences())
    def test_full_format_is_the_untagged_legacy_size(self, sequence):
        world = len(sequence[0])
        encoder = ClockWireEncoder(world, "full")
        decoder = ClockWireDecoder(world, "full")
        for clock in sequence:
            frame = encoder.encode(clock)
            assert frame.full and frame.wire_bytes == world * BYTES_PER_ENTRY
            assert decoder.decode(frame) == tuple(clock)

    @pytest.mark.parametrize("wire_format", SPARSE_FORMATS)
    @settings(max_examples=30, deadline=None)
    @given(sequence=clock_sequences(max_world=8))
    def test_sparse_frames_never_cost_more_than_a_tagged_full(
        self, wire_format, sequence
    ):
        world = len(sequence[0])
        encoder = ClockWireEncoder(world, wire_format, resync_period=1000)
        ceiling = WIRE_TAG_BYTES + world * BYTES_PER_ENTRY
        for clock in sequence:
            assert encoder.encode(clock).wire_bytes <= ceiling


class TestProtocolEdges:
    @pytest.mark.parametrize("wire_format", SPARSE_FORMATS)
    def test_first_frame_is_always_a_full_resync(self, wire_format):
        encoder = ClockWireEncoder(4, wire_format)
        assert encoder.encode((3, 0, 0, 9)).full

    @pytest.mark.parametrize("wire_format", SPARSE_FORMATS)
    def test_resync_period_forces_periodic_full_frames(self, wire_format):
        encoder = ClockWireEncoder(4, wire_format, resync_period=2)
        frames = [encoder.encode((i, 0, 0, 0)) for i in range(1, 8)]
        # full, sparse, sparse, full, sparse, sparse, full
        assert [f.full for f in frames] == [
            True, False, False, True, False, False, True
        ]

    @pytest.mark.parametrize("wire_format", SPARSE_FORMATS)
    def test_unchanged_clock_costs_an_empty_sparse_frame(self, wire_format):
        encoder = ClockWireEncoder(6, wire_format, resync_period=100)
        encoder.encode((1, 2, 3, 4, 5, 6))
        frame = encoder.encode((1, 2, 3, 4, 5, 6))
        assert not frame.full and frame.entries == ()
        assert frame.wire_bytes == WIRE_TAG_BYTES + WIRE_COUNT_BYTES

    def test_delta_entries_are_increments_truncated_are_absolute(self):
        world = 4
        for wire_format, expected in (
            ("delta", (2, 5)),        # 15 - 10
            ("truncated", (2, 15)),   # the new value itself
        ):
            encoder = ClockWireEncoder(world, wire_format, resync_period=100)
            encoder.encode((0, 0, 10, 0))
            frame = encoder.encode((0, 0, 15, 0))
            assert frame.entries == (expected,)

    def test_sparse_entry_costs_match_the_documented_model(self):
        encoder = ClockWireEncoder(8, "delta", resync_period=100)
        encoder.encode((0,) * 8)
        frame = encoder.encode((1, 0, 0, 0, 0, 0, 0, 2))
        assert frame.wire_bytes == (
            WIRE_TAG_BYTES + WIRE_COUNT_BYTES + 2 * (WIRE_RANK_BYTES + WIRE_DELTA_BYTES)
        )
        encoder = ClockWireEncoder(8, "truncated", resync_period=100)
        encoder.encode((0,) * 8)
        frame = encoder.encode((1, 0, 0, 0, 0, 0, 0, 2))
        assert frame.wire_bytes == (
            WIRE_TAG_BYTES + WIRE_COUNT_BYTES + 2 * (WIRE_RANK_BYTES + BYTES_PER_ENTRY)
        )

    def test_truncated_whole_vector_change_falls_back_to_a_full_frame(self):
        # A truncated entry (rank + absolute value) costs more than a full
        # entry, so a whole-vector change is cheaper as a resync; a delta
        # entry (rank + small increment) is always cheaper than a full
        # entry, so delta never falls back on change count alone.
        world = 4
        encoder = ClockWireEncoder(world, "truncated", resync_period=100)
        encoder.encode((0, 0, 0, 0))
        frame = encoder.encode((7, 8, 9, 10))
        assert frame.full
        assert frame.wire_bytes == WIRE_TAG_BYTES + world * BYTES_PER_ENTRY
        delta = ClockWireEncoder(world, "delta", resync_period=100)
        delta.encode((0, 0, 0, 0))
        assert not delta.encode((7, 8, 9, 10)).full

    def test_sparse_before_resync_is_a_protocol_violation(self):
        from repro.net.clock_transport import ClockWireFrame

        decoder = ClockWireDecoder(3, "delta")
        rogue = ClockWireFrame(
            wire_format="delta", full=False, entries=((0, 1),), wire_bytes=8
        )
        with pytest.raises(ValueError, match="before any full resync"):
            decoder.decode(rogue)

    def test_format_mismatch_is_rejected(self):
        encoder = ClockWireEncoder(3, "delta")
        frame = encoder.encode((1, 2, 3))
        with pytest.raises(ValueError, match="channel"):
            ClockWireDecoder(3, "truncated").decode(frame)

    def test_wrong_length_clock_is_rejected(self):
        with pytest.raises(ValueError, match="entries"):
            ClockWireEncoder(3, "delta").encode((1, 2))

    def test_validate_clock_wire(self):
        for wire_format in CLOCK_WIRE_FORMATS:
            assert validate_clock_wire(wire_format) == wire_format
        with pytest.raises(ValueError, match="clock_wire"):
            validate_clock_wire("zstd")
