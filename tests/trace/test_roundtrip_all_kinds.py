"""Every trace event kind must survive JSON serialization unchanged.

The serialization format is the archival interface of the pre-compiler
deployment route (paper, Section V-B): a saved debugging session replayed
later must reconstruct exactly the happens-before the online system saw.
These tests enumerate the event kinds *from the enums themselves*, so adding
a new ``AccessKind`` / operation / sync kind without serialization support
fails here rather than silently corrupting archives.
"""

import pytest

from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.trace.events import OperationRecord, SyncEvent
from repro.trace.serialization import (
    access_from_dict,
    access_to_dict,
    operation_from_dict,
    operation_to_dict,
    sync_from_dict,
    sync_to_dict,
    trace_from_json,
    trace_to_json,
)

#: Every high-level operation the NIC and runtime can record today.
OPERATIONS = [
    "put",
    "get",
    "local_read",
    "local_write",
    "fetch_add",
    "compare_and_swap",
    "send",
    "collective",
]


class TestAccessRoundTrip:
    @pytest.mark.parametrize("kind", list(AccessKind), ids=lambda k: k.value)
    def test_every_access_kind_round_trips(self, kind):
        access = MemoryAccess(
            access_id=7,
            rank=2,
            address=GlobalAddress(1, 5),
            kind=kind,
            value=41,
            time=3.25,
            symbol="x",
            operation="fetch_add" if kind is AccessKind.RMW else "put",
            observed=40 if kind is AccessKind.RMW else None,
        )
        assert access_from_dict(access_to_dict(access)) == access

    def test_rmw_observed_value_survives(self):
        access = MemoryAccess(
            access_id=1,
            rank=0,
            address=GlobalAddress(0, 0),
            kind=AccessKind.RMW,
            value=6,
            observed=5,
            operation="compare_and_swap",
        )
        decoded = access_from_dict(access_to_dict(access))
        assert decoded.observed == 5 and decoded.value == 6

    def test_legacy_access_dict_without_observed_decodes(self):
        data = access_to_dict(
            MemoryAccess(0, 0, GlobalAddress(0, 0), AccessKind.READ, value=1)
        )
        del data["observed"]  # a version-1 trace written before the RMW era
        assert access_from_dict(data).observed is None


class TestOperationRoundTrip:
    @pytest.mark.parametrize("operation", OPERATIONS)
    @pytest.mark.parametrize("posted", [None, 0.5], ids=["blocking", "posted"])
    def test_every_operation_round_trips(self, operation, posted):
        record = OperationRecord(
            operation=operation,
            origin=1,
            target=GlobalAddress(2, 9),
            symbol="y",
            start_time=1.0,
            end_time=2.5,
            data_messages=2,
            control_messages=3,
            raced=True,
            posted_time=posted,
        )
        decoded = operation_from_dict(operation_to_dict(record))
        assert decoded == record
        assert decoded.was_posted == (posted is not None)

    def test_legacy_operation_dict_without_posted_time_decodes(self):
        data = operation_to_dict(
            OperationRecord("put", 0, GlobalAddress(0, 0), None, 0.0, 1.0, 1, 0, False)
        )
        del data["posted_time"]
        assert operation_from_dict(data).posted_time is None


class TestSyncRoundTrip:
    @pytest.mark.parametrize("kind", ["barrier", "join", "notify"])
    def test_sync_kinds_round_trip(self, kind):
        sync = SyncEvent(sync_id=4, time=7.5, participants=(0, 1, 3), kind=kind)
        assert sync_from_dict(sync_to_dict(sync)) == sync

    @pytest.mark.parametrize("kind", [
        "send_post", "recv_post", "transfer", "recv_complete",
        "wr_post", "wr_transfer", "wr_retire",
    ])
    def test_directional_kinds_round_trip(self, kind):
        """The two-sided AND posted one-sided kinds: participant ORDER and
        the carried clock are semantic (direction of the happens-before
        edge) and must survive."""
        sync = SyncEvent(
            sync_id=9, time=2.5, participants=(2, 0), kind=kind,
            clock=(
                (3, 0, 1)
                if kind in ("transfer", "recv_complete", "wr_transfer", "wr_retire")
                else None
            ),
        )
        decoded = sync_from_dict(sync_to_dict(sync))
        assert decoded == sync
        assert decoded.participants == (2, 0)  # not sorted

    def test_legacy_sync_dict_without_clock_decodes(self):
        data = sync_to_dict(SyncEvent(0, 0.0, (0, 1), kind="barrier"))
        del data["clock"]  # a version-1 trace written before the SEND era
        assert sync_from_dict(data).clock is None


class TestWholeTraceRoundTrip:
    def test_recorded_verbs_run_round_trips_exactly(self):
        """A real run exercising every access kind archives losslessly."""
        runtime = DSMRuntime(RuntimeConfig(world_size=3, latency="uniform"))
        runtime.declare_scalar("c", owner=1, initial=0)
        runtime.declare_array("a", 4, owner=1, initial=0)

        def program(api):
            api.iput("a", api.rank, index=api.rank)       # posted put
            yield from api.fetch_add("c", 1)              # RMW (remote or local)
            yield from api.wait_all()
            yield from api.barrier()                      # sync event
            value = yield from api.get("a", index=0)      # read
            old = yield from api.compare_and_swap("c", 3, 30)
            api.private.write("seen", (value, old))

        runtime.set_spmd_program(program)
        runtime.run()

        accesses = runtime.recorder.accesses()
        operations = runtime.recorder.operations()
        syncs = runtime.recorder.syncs()
        # The run really covered every access kind and the posted path —
        # including the clock-transport sync triple of posted one-sided work.
        assert {a.kind for a in accesses} == set(AccessKind)
        assert any(op.was_posted for op in operations)
        assert syncs
        assert {"wr_post", "wr_transfer", "wr_retire"} <= {s.kind for s in syncs}
        assert any(
            s.clock is not None for s in syncs if s.kind in ("wr_transfer", "wr_retire")
        )

        text = trace_to_json(3, accesses, operations, syncs, indent=2)
        world, accesses2, operations2, syncs2 = trace_from_json(text)
        assert world == 3
        assert accesses2 == accesses
        assert operations2 == operations
        assert syncs2 == syncs
        # And a second encode is byte-identical (stable archival format).
        assert trace_to_json(3, accesses2, operations2, syncs2, indent=2) == text

    def test_recorded_send_recv_run_round_trips_exactly(self):
        """A two-sided run covers the directional sync kinds losslessly."""
        runtime = DSMRuntime(RuntimeConfig(world_size=2, latency="uniform"))
        runtime.declare_array("inbox", 2, owner=1, initial=0)

        def sender(api):
            yield from api.wait(api.isend(1, [4, 5], symbol="inbox"))

        def receiver(api):
            api.irecv(0, "inbox", indices=range(2))
            yield from api.wait_recv(1)

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        runtime.run()
        syncs = runtime.recorder.syncs()
        kinds = {sync.kind for sync in syncs}
        assert {"send_post", "recv_post", "transfer", "recv_complete"} <= kinds
        assert any(sync.clock is not None for sync in syncs)
        accesses = runtime.recorder.accesses()
        operations = runtime.recorder.operations()
        assert any(access.operation == "send" for access in accesses)
        text = trace_to_json(2, accesses, operations, syncs, indent=2)
        world, accesses2, operations2, syncs2 = trace_from_json(text)
        assert (world, accesses2, operations2, syncs2) == (
            2, accesses, operations, syncs
        )
