"""Unit tests for trace recording, serialization and replay."""

import json

import pytest

from repro.core.detector import DetectorConfig
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind
from repro.net.nic import RemoteOperationResult
from repro.trace.events import OperationRecord, summarize
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import TraceReplayer
from repro.trace.serialization import (
    access_from_dict,
    access_to_dict,
    trace_from_json,
    trace_to_json,
)


def record_some_accesses(recorder):
    a = GlobalAddress(1, 0)
    b = GlobalAddress(2, 3)
    recorder.record_access(0, a, AccessKind.WRITE, value=1, time=1.0, symbol="x", operation="put")
    recorder.record_access(2, a, AccessKind.READ, value=1, time=2.0, symbol="x", operation="get")
    recorder.record_access(0, b, AccessKind.WRITE, value=9, time=3.0, symbol="y", operation="put")
    recorder.record_access(0, b, AccessKind.WRITE, value=10, time=4.0, symbol="y", operation="local_write")
    return a, b


class TestTraceRecorder:
    def test_access_ids_are_unique_and_increasing(self):
        recorder = TraceRecorder(world_size=3)
        record_some_accesses(recorder)
        ids = [a.access_id for a in recorder.accesses()]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

    def test_filters(self):
        recorder = TraceRecorder(3)
        a, b = record_some_accesses(recorder)
        assert len(recorder.accesses(rank=0)) == 3
        assert len(recorder.accesses(address=a)) == 2
        assert len(recorder.accesses(symbol="y")) == 2
        assert len(recorder.accesses(kind=AccessKind.READ)) == 1

    def test_conflicting_pairs_need_a_write_and_same_cell(self):
        recorder = TraceRecorder(3)
        record_some_accesses(recorder)
        pairs = recorder.conflicting_pairs()
        # (write,read) on a, (write,write) on b.
        assert len(pairs) == 2

    def test_operation_records(self):
        recorder = TraceRecorder(3)
        result = RemoteOperationResult(
            operation="put", origin=0, target=GlobalAddress(1, 0), value=5,
            check=None, start_time=1.0, end_time=4.0, data_messages=1, control_messages=2,
        )
        record = recorder.record_operation(result, symbol="x")
        assert record.elapsed == 3.0
        assert recorder.operations("put") == [record]
        assert recorder.operations("get") == []

    def test_summary_counts(self):
        recorder = TraceRecorder(3)
        record_some_accesses(recorder)
        summary = recorder.summary()
        assert summary.accesses == 4
        assert summary.writes == 3 and summary.reads == 1
        assert summary.cells_touched == 2
        assert summary.local_accesses == 1
        assert summary.per_rank_accesses == {0: 3, 2: 1}
        assert summary.duration == 3.0
        assert summary.as_dict()["accesses"] == 4

    def test_values_can_be_dropped(self):
        recorder = TraceRecorder(3, keep_values=False)
        recorder.record_access(0, GlobalAddress(0, 0), AccessKind.WRITE, value="big blob")
        assert recorder.accesses()[0].value is None

    def test_clear(self):
        recorder = TraceRecorder(3)
        record_some_accesses(recorder)
        recorder.clear()
        assert len(recorder) == 0


class TestSerialization:
    def test_access_round_trip(self):
        recorder = TraceRecorder(3)
        record_some_accesses(recorder)
        for access in recorder.accesses():
            assert access_from_dict(access_to_dict(access)) == access

    def test_trace_round_trip(self):
        recorder = TraceRecorder(3)
        record_some_accesses(recorder)
        recorder.record_sync([0, 1, 2], time=5.0)
        text = trace_to_json(
            3, recorder.accesses(), recorder.operations(), recorder.syncs(), indent=2
        )
        world, accesses, operations, syncs = trace_from_json(text)
        assert world == 3
        assert accesses == recorder.accesses()
        assert operations == []
        assert syncs == recorder.syncs()

    def test_non_json_values_are_stringified(self):
        recorder = TraceRecorder(2)
        recorder.record_access(0, GlobalAddress(0, 0), AccessKind.WRITE, value={"a", "b"})
        text = trace_to_json(2, recorder.accesses())
        _world, accesses, _ops, _syncs = trace_from_json(text)
        assert isinstance(accesses[0].value, str)

    def test_format_guard(self):
        with pytest.raises(ValueError):
            trace_from_json('{"format": "something-else"}')
        with pytest.raises(ValueError):
            trace_from_json('{"format": "repro-dsm-trace", "version": 99}')


class TestReplay:
    def test_replay_flags_unordered_writes(self):
        recorder = TraceRecorder(3)
        a = GlobalAddress(1, 0)
        recorder.record_access(0, a, AccessKind.WRITE, value=1, time=1.0, symbol="a", operation="put")
        recorder.record_access(2, a, AccessKind.WRITE, value=2, time=2.0, symbol="a", operation="put")
        outcome = TraceReplayer(3).replay(recorder.accesses())
        assert outcome.race_count == 1
        assert outcome.races[0].symbol == "a"
        assert outcome.accesses_replayed == 2
        assert outcome.cells_touched == 1

    def test_replay_is_silent_for_single_writer(self):
        recorder = TraceRecorder(2)
        a = GlobalAddress(1, 0)
        for step in range(5):
            recorder.record_access(0, a, AccessKind.WRITE, value=step, time=float(step), operation="put")
        outcome = TraceReplayer(2).replay(recorder.accesses())
        assert outcome.race_count == 0

    def test_replay_respects_detector_config(self):
        recorder = TraceRecorder(3)
        a = GlobalAddress(1, 0)
        recorder.record_access(0, a, AccessKind.READ, time=1.0, operation="get")
        recorder.record_access(2, a, AccessKind.READ, time=2.0, operation="get")
        default = TraceReplayer(3).replay(recorder.accesses())
        assert default.race_count == 0  # read-read is never a race


class TestArchiveSchemaVersion:
    def test_archives_are_stamped_and_legacy_loads(self):
        from repro.trace.serialization import TRACE_ARCHIVE_SCHEMA_VERSION

        recorder = TraceRecorder(2)
        recorder.record_access(0, GlobalAddress(1, 0), AccessKind.WRITE, value=1)
        text = trace_to_json(2, recorder.accesses())
        payload = json.loads(text)
        assert payload["schema_version"] == TRACE_ARCHIVE_SCHEMA_VERSION
        # Legacy archives (no schema_version) still load.
        del payload["schema_version"]
        world, accesses, _ops, _syncs = trace_from_json(json.dumps(payload))
        assert world == 2 and len(accesses) == 1

    def test_wrong_schema_version_fails_loudly(self):
        text = trace_to_json(2, [])
        payload = json.loads(text)
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            trace_from_json(json.dumps(payload))


class TestReplayDetectionProfile:
    def test_replay_outcome_carries_the_detectors_cost_profile(self):
        from repro.core.detector import DetectorConfig

        recorder = TraceRecorder(3)
        a = GlobalAddress(1, 0)
        recorder.record_access(0, a, AccessKind.WRITE, value=1, time=1.0, operation="put")
        recorder.record_access(2, a, AccessKind.WRITE, value=2, time=2.0, operation="put")
        outcome = TraceReplayer(3).replay(recorder.accesses())
        totals = {
            key: sum(entry[key] for entry in outcome.detection_profile.values())
            for key in ("checks", "compares", "joins", "epoch_hits")
        }
        assert totals["checks"] == outcome.accesses_replayed == 2
        # Epochs default on: identical verdicts, epoch hits possible; with
        # epochs off the same replay reports the same races and zero hits.
        slow = TraceReplayer(3, config=DetectorConfig(epochs=False)).replay(
            recorder.accesses()
        )
        assert slow.race_count == outcome.race_count == 1
        slow_totals = {
            key: sum(entry[key] for entry in slow.detection_profile.values())
            for key in ("checks", "compares", "joins", "epoch_hits")
        }
        assert slow_totals["epoch_hits"] == 0
        assert slow_totals["checks"] == totals["checks"]
