"""Unit tests for the argument-validation helpers."""

import pytest

from repro.util.validation import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_rank,
    require_type,
    require_unique,
)


class TestRequire:
    def test_passes_when_condition_true(self):
        require(True, "should not raise")

    def test_raises_value_error_with_message(self):
        with pytest.raises(ValueError, match="broken invariant"):
            require(False, "broken invariant")


class TestRequireType:
    def test_returns_value_on_success(self):
        assert require_type(5, int, "x") == 5

    def test_accepts_tuple_of_types(self):
        assert require_type(1.5, (int, float), "x") == 1.5

    def test_raises_type_error_with_expected_names(self):
        with pytest.raises(TypeError, match="x must be int"):
            require_type("no", int, "x")

    def test_tuple_error_message_lists_alternatives(self):
        with pytest.raises(TypeError, match="int or float"):
            require_type("no", (int, float), "x")


class TestNumericValidators:
    def test_non_negative_accepts_zero(self):
        assert require_non_negative(0, "n") == 0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-1, "n")

    def test_non_negative_rejects_bool(self):
        with pytest.raises(TypeError):
            require_non_negative(True, "n")

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive(0, "n")

    def test_positive_accepts_float(self):
        assert require_positive(0.5, "n") == 0.5

    def test_positive_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive(True, "n")

    def test_in_range_inclusive_bounds(self):
        assert require_in_range(0.0, 0.0, 1.0, "f") == 0.0
        assert require_in_range(1.0, 0.0, 1.0, "f") == 1.0

    def test_in_range_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(1.5, 0.0, 1.0, "f")


class TestRequireRank:
    def test_valid_ranks(self):
        for rank in range(4):
            assert require_rank(rank, 4) == rank

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_rank(-1, 4)

    def test_rejects_world_size(self):
        with pytest.raises(ValueError):
            require_rank(4, 4)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_rank(True, 4)

    def test_rejects_non_positive_world(self):
        with pytest.raises(ValueError):
            require_rank(0, 0)


class TestRequireUnique:
    def test_accepts_unique(self):
        assert list(require_unique([1, 2, 3], "xs")) == [1, 2, 3]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            require_unique([1, 2, 1], "xs")
