"""Unit tests for id allocation and the simulation-time logger."""

import json

import pytest

from repro.util.ids import IdAllocator, monotonic_id
from repro.util.logging import LEVELS, NullLogger, SimLogger, level_number


class TestIdAllocator:
    def test_ids_are_consecutive(self):
        alloc = IdAllocator()
        assert [alloc.next_int() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_string_ids_carry_prefix(self):
        alloc = IdAllocator("msg")
        assert alloc.next_str() == "msg-0"
        assert alloc.next_str() == "msg-1"

    def test_peek_does_not_consume(self):
        alloc = IdAllocator()
        assert alloc.peek() == 0
        assert alloc.peek() == 0
        assert alloc.next_int() == 0
        assert alloc.next_int() == 1

    def test_independent_allocators(self):
        a, b = IdAllocator(), IdAllocator()
        a.next_int()
        assert b.next_int() == 0

    def test_monotonic_id_increases(self):
        first = monotonic_id()
        second = monotonic_id()
        assert second > first


class TestSimLogger:
    def test_records_carry_simulated_time(self):
        time = {"now": 0.0}
        logger = SimLogger(clock=lambda: time["now"])
        logger.log("cat", "first")
        time["now"] = 5.5
        record = logger.log("cat", "second", rank=2)
        assert record.time == 5.5
        assert record.rank == 2
        assert [r.time for r in logger.records()] == [0.0, 5.5]

    def test_filter_by_category(self):
        logger = SimLogger()
        logger.log("a", "one")
        logger.log("b", "two")
        logger.log("a", "three")
        assert len(logger.records("a")) == 2
        assert logger.categories() == ["a", "b"]

    def test_bind_clock_replaces_source(self):
        logger = SimLogger()
        logger.bind_clock(lambda: 42.0)
        assert logger.log("x", "msg").time == 42.0

    def test_clear_and_len(self):
        logger = SimLogger()
        logger.log("x", "msg")
        assert len(logger) == 1
        logger.clear()
        assert len(logger) == 0

    def test_echo_prints(self, capsys):
        logger = SimLogger(echo=True)
        logger.log("race", "found one", rank=3)
        out = capsys.readouterr().out
        assert "found one" in out
        assert "P3" in out

    def test_null_logger_drops_records(self):
        logger = NullLogger()
        logger.log("x", "ignored")
        assert len(logger) == 0

    def test_null_logger_records_still_carry_the_bound_clock(self):
        logger = NullLogger()
        logger.bind_clock(lambda: 7.5)
        record = logger.log("x", "ignored", rank=1)
        assert record.time == 7.5
        assert record.rank == 1


class TestSeverity:
    def test_levels_are_ordered(self):
        assert LEVELS == ("debug", "info", "warning", "error")
        assert [level_number(level) for level in LEVELS] == [0, 1, 2, 3]

    def test_unknown_level_raises_early(self):
        with pytest.raises(ValueError, match="unknown log level"):
            level_number("fatal")
        with pytest.raises(ValueError, match="unknown log level"):
            SimLogger().log("x", "msg", level="fatal")

    def test_shorthands_set_the_level(self):
        logger = SimLogger()
        assert logger.debug("c", "a").level == "debug"
        assert logger.info("c", "b").level == "info"
        assert logger.warning("c", "d").level == "warning"
        assert logger.error("c", "e").level == "error"

    def test_records_filter_by_min_level_and_category(self):
        logger = SimLogger()
        logger.debug("race", "noise")
        logger.warning("race", "signal")
        logger.error("nic", "bad")
        assert [r.message for r in logger.records(min_level="warning")] == [
            "signal", "bad",
        ]
        assert [r.message for r in logger.records("race", min_level="warning")] == [
            "signal",
        ]


class TestJsonlExport:
    def test_to_jsonl_is_canonical_and_filterable(self):
        logger = SimLogger()
        logger.info("race", "one", rank=0)
        logger.warning("race", "two", rank=1)
        logger.info("nic", "three")
        lines = logger.to_jsonl().splitlines()
        assert len(lines) == 3
        for line in lines:
            payload = json.loads(line)
            assert list(payload) == sorted(payload)
            assert set(payload) == {"time", "category", "message", "rank", "level"}
        filtered = logger.to_jsonl(category="race", min_level="warning")
        assert json.loads(filtered)["message"] == "two"

    def test_empty_logger_exports_empty_string(self):
        assert SimLogger().to_jsonl() == ""
