"""Unit tests for id allocation and the simulation-time logger."""

import pytest

from repro.util.ids import IdAllocator, monotonic_id
from repro.util.logging import NullLogger, SimLogger


class TestIdAllocator:
    def test_ids_are_consecutive(self):
        alloc = IdAllocator()
        assert [alloc.next_int() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_string_ids_carry_prefix(self):
        alloc = IdAllocator("msg")
        assert alloc.next_str() == "msg-0"
        assert alloc.next_str() == "msg-1"

    def test_peek_does_not_consume(self):
        alloc = IdAllocator()
        assert alloc.peek() == 0
        assert alloc.peek() == 0
        assert alloc.next_int() == 0
        assert alloc.next_int() == 1

    def test_independent_allocators(self):
        a, b = IdAllocator(), IdAllocator()
        a.next_int()
        assert b.next_int() == 0

    def test_monotonic_id_increases(self):
        first = monotonic_id()
        second = monotonic_id()
        assert second > first


class TestSimLogger:
    def test_records_carry_simulated_time(self):
        time = {"now": 0.0}
        logger = SimLogger(clock=lambda: time["now"])
        logger.log("cat", "first")
        time["now"] = 5.5
        record = logger.log("cat", "second", rank=2)
        assert record.time == 5.5
        assert record.rank == 2
        assert [r.time for r in logger.records()] == [0.0, 5.5]

    def test_filter_by_category(self):
        logger = SimLogger()
        logger.log("a", "one")
        logger.log("b", "two")
        logger.log("a", "three")
        assert len(logger.records("a")) == 2
        assert logger.categories() == ["a", "b"]

    def test_bind_clock_replaces_source(self):
        logger = SimLogger()
        logger.bind_clock(lambda: 42.0)
        assert logger.log("x", "msg").time == 42.0

    def test_clear_and_len(self):
        logger = SimLogger()
        logger.log("x", "msg")
        assert len(logger) == 1
        logger.clear()
        assert len(logger) == 0

    def test_echo_prints(self, capsys):
        logger = SimLogger(echo=True)
        logger.log("race", "found one", rank=3)
        out = capsys.readouterr().out
        assert "found one" in out
        assert "P3" in out

    def test_null_logger_drops_records(self):
        logger = NullLogger()
        logger.log("x", "ignored")
        assert len(logger) == 0
