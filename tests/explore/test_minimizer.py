"""Racing-schedule minimization and the replayable artifact it emits."""

import json

import pytest

from repro.explore import Explorer, minimize_racing_schedule, replay_artifact
from repro.explore.minimize import load_artifact, save_artifact
from repro.trace.replay import TraceReplayer
from repro.trace.serialization import trace_from_json
from repro.workloads.racy_patterns import pattern_corpus

CORPUS = {p.name: p for p in pattern_corpus()}
QUANTUM = 4.0


def fuzzed_racing_outcome(name, symbols):
    explorer = Explorer(CORPUS[name].build, seed=0)
    result = explorer.explore_fuzzed(8, quantum=QUANTUM)
    outcome = result.racing_outcome(symbols)
    assert outcome is not None
    return result, outcome


def test_detector_criterion_minimizes_toward_the_empty_log():
    """A real race is flagged in *every* schedule, so minimizing on the
    detector verdict strips every perturbation: the baseline already races —
    the every-schedule guarantee, observed through the minimizer."""
    _, outcome = fuzzed_racing_outcome("fig5a-concurrent-puts", {"a"})
    minimized = minimize_racing_schedule(
        CORPUS["fig5a-concurrent-puts"].build, 0, outcome.decisions, {"a"}
    )
    assert minimized.perturbations == 0
    assert minimized.minimized_length == 0
    assert "a" in minimized.flagged
    assert minimized.replays_used >= 1


def test_outcome_criterion_keeps_only_the_deciding_perturbations():
    """Minimizing toward an *observable* outcome must retain whatever
    perturbation flips the racing writes' arrival order — and shed the rest."""
    pattern = CORPUS["fig5a-concurrent-puts"]
    result = Explorer(pattern.build, seed=0).explore_fuzzed(10, quantum=QUANTUM)
    baseline_final = result.outcomes[0].final_values["a"]
    flipped = next(
        o for o in result.outcomes if o.final_values["a"] != baseline_final
    )
    predicate = lambda outcome: outcome.final_values["a"] == flipped.final_values["a"]
    minimized = minimize_racing_schedule(
        pattern.build, 0, flipped.decisions, {"a"}, predicate=predicate
    )
    assert 1 <= minimized.perturbations <= len(flipped.decisions.non_default())
    assert minimized.minimized_length <= len(flipped.decisions)
    assert minimized.outcome.final_values["a"] == flipped.final_values["a"]


def test_minimizing_a_non_racing_log_is_an_error():
    pattern = CORPUS["fig4-concurrent-reads"]
    explorer = Explorer(pattern.build, seed=0)
    outcome = explorer.explore_fuzzed(2, quantum=QUANTUM).outcomes[0]
    with pytest.raises(ValueError):
        minimize_racing_schedule(pattern.build, 0, outcome.decisions, {"x"})
    with pytest.raises(ValueError):
        minimize_racing_schedule(pattern.build, 0, outcome.decisions, set())


def test_artifact_round_trip_live_and_through_the_trace_layer(tmp_path):
    pattern = CORPUS["write-after-read-unsync"]
    _, outcome = fuzzed_racing_outcome("write-after-read-unsync", {"shared"})
    minimized = minimize_racing_schedule(pattern.build, 0, outcome.decisions, {"shared"})
    path = tmp_path / "race.json"
    written = save_artifact(minimized, pattern.build, 0, str(path), pattern=pattern.name)
    loaded = load_artifact(str(path))
    assert loaded == json.loads(json.dumps(written))  # JSON-stable
    assert loaded["pattern"] == pattern.name
    assert "shared" in loaded["flagged_symbols"]

    # Live replay: same race, same schedule.
    live = replay_artifact(str(path), pattern.build)
    assert "shared" in live.flagged["matrix-clock"]
    assert live.fingerprint == minimized.outcome.fingerprint

    # Offline replay via the existing trace layer: the stored accesses alone
    # reproduce the same race report.
    world_size, accesses, _operations, syncs = trace_from_json(
        json.dumps(loaded["trace"])
    )
    replayed = TraceReplayer(world_size).replay(accesses, syncs=syncs)
    assert {r.symbol for r in replayed.races} >= {"shared"}


def test_load_artifact_rejects_foreign_json(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError):
        load_artifact(str(path))
