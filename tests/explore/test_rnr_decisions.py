"""Controller ownership of RNR retry timing.

PR 3 left RNR backoff timers uncontrolled (deterministic but not
branchable); the schedule controller now owns them exactly as it owns
delivery latencies: every backoff is a logged, replayable ``rnr`` decision,
the fuzzer perturbs them, and the systematic searcher treats them as branch
points — so retry-storm interleavings (which retransmission lands before
which repost) are part of the explored schedule space.
"""

from repro.explore.controller import (
    PassthroughStrategy,
    ReplayStrategy,
    ScheduleController,
)
from repro.explore.fuzzer import ScheduleFuzzer
from repro.explore.runner import run_schedule
from repro.explore.systematic import SystematicStrategy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig


def rnr_factory(seed):
    """A SEND that must retry: the receiver posts its buffer late."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            seed=seed,
            latency="constant",
            verbs_rnr_backoff=1.0,
        )
    )
    runtime.declare_array("inbox", 2, owner=1, initial=0)

    def sender(api):
        request = api.isend(1, [7, 8], symbol="inbox")
        yield from api.wait(request)

    def late_receiver(api):
        yield from api.compute(6.0)  # several backoff periods of silence
        api.irecv(source=0, symbol="inbox", indices=range(2))
        yield from api.wait_recv(1)

    runtime.set_program(0, sender)
    runtime.set_program(1, late_receiver)
    return runtime


def rnr_decisions(log):
    return [d for d in log.entries if d is not None and d.kind == "rnr"]


class TestRnrChoicePointsAreOwned:
    def test_passthrough_logs_every_backoff(self):
        outcome = run_schedule(rnr_factory, 0, PassthroughStrategy())
        decisions = rnr_decisions(outcome.decisions)
        assert decisions, "an RNR-retrying send must produce rnr decisions"
        assert all(d.choice == 0.0 for d in decisions), (
            "passthrough must leave every backoff at its configured value"
        )
        assert all(d.key.startswith("rnr:0->1#") for d in decisions)

    def test_recorded_log_replays_byte_identically(self):
        baseline = run_schedule(rnr_factory, 0, PassthroughStrategy())
        replayed = run_schedule(rnr_factory, 0, ReplayStrategy(baseline.decisions))
        assert replayed.fingerprint == baseline.fingerprint
        assert replayed.final_values == baseline.final_values
        assert replayed.decisions == baseline.decisions

    def test_fuzzer_perturbs_backoffs_deterministically(self):
        def fuzzed():
            return run_schedule(
                rnr_factory,
                0,
                ScheduleFuzzer(seed=7, reorder_probability=1.0, quantum=1.0),
            )

        first, second = fuzzed(), fuzzed()
        perturbed = [d for d in rnr_decisions(first.decisions) if d.choice > 0.0]
        assert perturbed, "a p=1.0 fuzzer must stretch at least one backoff"
        assert first.decisions == second.decisions, "fuzzing must be a pure function of its seed"
        assert first.final_values == second.final_values
        # The stretched schedule still delivers the payload.
        assert first.final_values["inbox"] == (7, 8)

    def test_stretched_backoff_replays_from_the_log_alone(self):
        fuzzed = run_schedule(
            rnr_factory,
            0,
            ScheduleFuzzer(seed=7, reorder_probability=1.0, quantum=1.0),
        )
        replayed = run_schedule(rnr_factory, 0, ReplayStrategy(fuzzed.decisions))
        assert replayed.fingerprint == fuzzed.fingerprint
        assert replayed.elapsed_sim_time == fuzzed.elapsed_sim_time


class TestSystematicBranchesOnRetryTiming:
    def test_rnr_points_become_branch_points(self):
        strategy = SystematicStrategy({}, branch_factor=2, max_branch_points=32)
        run_schedule(rnr_factory, 0, strategy)
        rnr_points = [k for k in strategy.branch_points if k.startswith("rnr:")]
        assert rnr_points, (
            "the systematic searcher must be able to branch on RNR backoffs"
        )

    def test_forcing_a_backoff_slot_changes_the_retry_count(self):
        baseline_strategy = SystematicStrategy({}, branch_factor=3, max_branch_points=32)
        baseline = run_schedule(rnr_factory, 0, baseline_strategy)
        key = next(k for k in baseline_strategy.branch_points if k.startswith("rnr:"))
        forced = run_schedule(
            rnr_factory,
            0,
            SystematicStrategy({key: 2}, branch_factor=3, quantum=1.0,
                               max_branch_points=32),
        )
        # Stretching one backoff by two quanta swallows later retry slots:
        # the run resolves strictly fewer rnr choice points.
        assert len(rnr_decisions(forced.decisions)) < len(
            rnr_decisions(baseline.decisions)
        )
        # ...at identical delivered payloads (reliability is not schedule-dependent).
        assert forced.final_values == baseline.final_values
