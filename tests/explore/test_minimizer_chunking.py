"""Chunked (ddmin-style) minimization over scattered decisions.

Prefix truncation is enough when a race rides on a tail of latency
perturbations, but schedules found mainly through tie shuffling keep their
irrelevant decisions scattered across the whole log — there the old
per-decision sparsification paid one replay per decision.  The chunk pass
defaults whole batches at once, and strict-replay misalignment (defaulting
a tie can change which choice points even exist downstream) is treated as
a failed shrink instead of crashing the minimization.
"""

import math

from repro.explore.controller import ReplayStrategy
from repro.explore.fuzzer import ScheduleFuzzer
from repro.explore.minimize import minimize_racing_schedule
from repro.explore.runner import run_schedule
from repro.workloads.racy_patterns import pattern_corpus

CORPUS = {p.name: p for p in pattern_corpus()}


def _fuzzed_log(name, seed=5, tie_shuffle=0.0):
    pattern = CORPUS[name]
    outcome = run_schedule(
        pattern.build,
        0,
        ScheduleFuzzer(
            seed=seed,
            reorder_probability=1.0,
            tie_shuffle_probability=tie_shuffle,
            quantum=1.0,
        ),
    )
    return pattern, outcome.decisions


def _keep_last_perturbation_predicate(log):
    """Predicate pinning the last non-default decision: the worst case for
    prefix truncation (nothing can be cut from the tail), the best case for
    chunking (everything before it is noise)."""
    target_index = max(
        i for i, e in enumerate(log.entries) if e is not None and not e.is_default
    )
    target = log.entries[target_index]

    def predicate(outcome):
        entries = outcome.decisions.entries
        return (
            len(entries) > target_index
            and entries[target_index] is not None
            and entries[target_index].choice == target.choice
        )

    return predicate


def test_chunking_converges_in_fewer_replays_than_one_per_decision():
    pattern, log = _fuzzed_log("unsynchronized-counter")
    perturbations = len(log.non_default())
    assert perturbations >= 20, "the scenario must scatter plenty of noise"
    minimized = minimize_racing_schedule(
        pattern.build, 0, log, set(pattern.racy_symbols),
        predicate=_keep_last_perturbation_predicate(log),
    )
    # Converged: almost all scattered perturbations identified as noise.
    assert minimized.perturbations <= perturbations // 3
    # Strictly cheaper than the pre-chunking algorithm, whose floor is the
    # prefix bisection (>= log2(len)+1 replays, none of which can truncate
    # here) plus one replay per surviving non-default decision.
    per_decision_floor = 1 + math.ceil(math.log2(len(log) + 1)) + perturbations
    assert minimized.replays_used < per_decision_floor, (
        f"chunking used {minimized.replays_used} replays; one-per-decision "
        f"needs at least {per_decision_floor}"
    )


def test_minimized_log_still_satisfies_the_predicate_on_replay():
    pattern, log = _fuzzed_log("fig5c-arrival-race")
    predicate = _keep_last_perturbation_predicate(log)
    minimized = minimize_racing_schedule(
        pattern.build, 0, log, set(pattern.racy_symbols), predicate=predicate,
    )
    replayed = run_schedule(
        pattern.build, 0, ReplayStrategy(minimized.decisions), offline_detectors=()
    )
    assert predicate(replayed)
    assert set(pattern.racy_symbols) <= replayed.flagged["matrix-clock"]


def test_tie_shuffled_logs_minimize_without_divergence_crashes():
    """Defaulting tie decisions can misalign the tail; the minimizer must
    treat that as a failed shrink, not an error (this scenario crashed the
    strict replayer before divergence handling)."""
    pattern, log = _fuzzed_log("fig5a-concurrent-puts", seed=3, tie_shuffle=0.5)
    assert any(
        d.kind == "tie" for d in log.non_default()
    ), "the log must actually contain shuffled ties"
    minimized = minimize_racing_schedule(
        pattern.build, 0, log, set(pattern.racy_symbols),
        predicate=_keep_last_perturbation_predicate(log),
    )
    assert minimized.perturbations <= len(log.non_default())
    # The result is still a valid, aligned schedule.
    replayed = run_schedule(
        pattern.build, 0, ReplayStrategy(minimized.decisions), offline_detectors=()
    )
    assert set(pattern.racy_symbols) <= replayed.flagged["matrix-clock"]
