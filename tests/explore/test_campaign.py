"""The sharded campaign runner: worker-count invariance, reports, CLI smoke."""

import json

import pytest

from repro.explore.campaign import CampaignConfig, main, run_campaign

PATTERNS = ["fig5a-concurrent-puts", "write-after-read-unsync"]


def test_sharded_campaign_matches_inline_campaign():
    inline = run_campaign(
        CampaignConfig(strategy="systematic", budget=4, seed=0, quantum=4.0, workers=0),
        patterns=PATTERNS,
    )
    sharded = run_campaign(
        CampaignConfig(strategy="systematic", budget=4, seed=0, quantum=4.0, workers=2),
        patterns=PATTERNS,
    )
    inline_dict, sharded_dict = inline.as_dict(), sharded.as_dict()
    # Worker count is orchestration, not an input to any schedule.
    inline_dict["config"]["workers"] = sharded_dict["config"]["workers"] = None
    assert inline_dict == sharded_dict


def test_report_json_and_markdown_are_well_formed():
    report = run_campaign(
        CampaignConfig(strategy="fuzz", budget=4, seed=0, quantum=4.0),
        patterns=PATTERNS,
    )
    payload = json.loads(report.to_json())
    assert payload["format"] == "repro-exploration-campaign"
    assert {p["pattern"] for p in payload["patterns"]} == set(PATTERNS)
    assert "matrix-clock" in payload["detector_scores"]
    markdown = report.to_markdown()
    assert "| detector |" in markdown and "matrix-clock" in markdown
    for name in PATTERNS:
        assert name in markdown


def test_detector_scores_rank_detectors_correctly():
    """Across explored schedules, the accuracy ordering the paper reports:
    matrix-clock perfect, lockset near-blind (NIC locks satisfy its
    discipline while the logical races remain)."""
    report = run_campaign(
        CampaignConfig(strategy="systematic", budget=5, seed=0, quantum=4.0),
        patterns=PATTERNS + ["fig4-concurrent-reads", "disjoint-cells"],
    )
    scores = report.detector_scores()
    matrix = scores["matrix-clock"]
    assert matrix.program_level.accuracy == 1.0
    assert matrix.symbol_level.recall == 1.0
    lockset = scores["lockset"]
    assert lockset.symbol_level.recall == 0.0
    assert lockset.program_level.accuracy < matrix.program_level.accuracy


def test_campaign_rejects_bad_configuration():
    with pytest.raises(ValueError):
        CampaignConfig(strategy="annealing")
    with pytest.raises(ValueError):
        CampaignConfig(budget=0)
    with pytest.raises(ValueError):
        CampaignConfig(workers=-1)
    with pytest.raises(ValueError):
        run_campaign(CampaignConfig(), corpus="nonexistent")
    with pytest.raises(ValueError):
        run_campaign(CampaignConfig(), patterns=["no-such-pattern"])


def test_cli_smoke_with_expect_consistent(tmp_path, capsys):
    json_path = tmp_path / "campaign.json"
    markdown_path = tmp_path / "campaign.md"
    exit_code = main(
        [
            "--patterns", *PATTERNS,
            "--strategy", "systematic",
            "--budget", "4",
            "--quantum", "4.0",
            "--json", str(json_path),
            "--markdown", str(markdown_path),
            "--expect-consistent",
        ]
    )
    assert exit_code == 0
    assert json.loads(json_path.read_text())["fully_consistent"] is True
    assert "HOLDS" in markdown_path.read_text()
    assert "Exploration campaign" in capsys.readouterr().out


def test_campaign_critical_path_summaries_and_ranked_markdown():
    """With ``critical_path=True`` every outcome carries a per-schedule path
    summary (exact: path time == the schedule's elapsed sim time) and the
    markdown report ranks schedules by path composition."""
    report = run_campaign(
        CampaignConfig(
            strategy="systematic", budget=3, seed=0, quantum=4.0,
            critical_path=True,
        ),
        patterns=["fig5a-concurrent-puts"],
    )
    (pattern,) = report.per_pattern
    outcomes = pattern["outcomes"]
    assert outcomes
    for outcome in outcomes:
        summary = outcome["critical_path"]
        assert summary["path_sim_time"] == outcome["elapsed_sim_time"]
        assert summary["dominant"] in summary["categories"]
    markdown = report.to_markdown()
    assert "## Schedules ranked by critical-path composition" in markdown


def test_campaign_without_critical_path_records_no_summaries():
    report = run_campaign(
        CampaignConfig(strategy="systematic", budget=2, seed=0, quantum=4.0),
        patterns=["fig5a-concurrent-puts"],
    )
    (pattern,) = report.per_pattern
    assert all(not o["critical_path"] for o in pattern["outcomes"])
    assert "ranked by critical-path" not in report.to_markdown()


def test_minimize_dir_writes_replayable_artifacts_per_racy_pattern(tmp_path):
    """The nightly leg's contract: --minimize-dir emits one self-contained,
    replayable minimized racing schedule per racy pattern, under the
    campaign's own knobs (here: UD with drop/duplicate fuzzing)."""
    from repro.explore.campaign import minimize_campaign_artifacts
    from repro.explore.minimize import load_artifact, replay_artifact
    from repro.explore.runner import MATRIX_CLOCK
    from repro.workloads.racy_patterns import pattern_corpus

    config = CampaignConfig(
        strategy="fuzz",
        budget=3,
        seed=0,
        quantum=4.0,
        clock_transport="piggyback",
        clock_wire="delta",
        transport="ud",
        drop_probability=0.25,
        duplicate_probability=0.1,
    )
    written = minimize_campaign_artifacts(
        config, str(tmp_path), patterns=PATTERNS
    )
    assert len(written) == len(PATTERNS)
    by_name = {p.name: p for p in pattern_corpus()}
    for path in written:
        artifact = load_artifact(path)
        pattern = by_name[artifact["pattern"]]
        assert artifact["target_symbols"], path
        assert set(artifact["target_symbols"]) <= set(pattern.racy_symbols)

        # Replaying the artifact recipe must need the same knobs baked in.
        def factory(seed, _build=pattern.build):
            runtime = _build(seed)
            runtime.set_clock_transport("piggyback")
            runtime.set_clock_wire("delta")
            runtime.set_transport("ud")
            return runtime

        outcome = replay_artifact(path, factory)
        assert set(artifact["target_symbols"]) <= outcome.flagged[MATRIX_CLOCK]


def test_minimize_dir_cli_flag_prints_artifact_paths(tmp_path, capsys):
    out_dir = tmp_path / "minimized"
    code = main(
        [
            "--patterns",
            "fig5a-concurrent-puts",
            "--strategy",
            "fuzz",
            "--budget",
            "2",
            "--quantum",
            "4.0",
            "--minimize-dir",
            str(out_dir),
        ]
    )
    assert code == 0
    assert (out_dir / "minimized-fig5a-concurrent-puts.json").exists()
    assert "minimized racing schedule" in capsys.readouterr().out
