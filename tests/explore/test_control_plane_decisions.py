"""Controller ownership of the adaptive control plane's choice points.

The runtime control plane added three adaptive mechanisms — credit-based
flow control, ``(cq_count, cq_usec)`` CQ-moderation timers, and adaptive
clock-wire resync — plus the barrier fan-out order, the last previously
uncontrolled ordering.  Each adaptive decision (credit grant timing, timer
expiry, resync deferral, release pick) routes through the schedule
controller as a logged, replayable, fuzzable, systematically branchable
decision point, exactly as delivery latencies and RNR backoffs already do.
"""

from repro.explore.controller import (
    PassthroughStrategy,
    ReplayStrategy,
    ScheduleController,
)
from repro.explore.decisions import DECISION_KINDS
from repro.explore.fuzzer import ScheduleFuzzer
from repro.explore.runner import run_schedule
from repro.explore.systematic import SystematicStrategy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig


def decisions_of(log, kind):
    return [d for d in log.entries if d is not None and d.kind == kind]


def credit_factory(seed):
    """Credit-mode SENDs that must stall: the receiver posts buffers late."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            seed=seed,
            latency="constant",
            flow_control="credit",
        )
    )
    runtime.declare_array("inbox", 4, owner=1, initial=0)

    def sender(api):
        first = api.isend(1, [7, 8], symbol="inbox")
        second = api.isend(1, [9, 10], symbol="inbox")
        yield from api.wait(first, second)

    def late_receiver(api):
        yield from api.compute(6.0)
        api.irecv(source=0, symbol="inbox", indices=range(2))
        yield from api.compute(3.0)
        api.irecv(source=0, symbol="inbox", indices=range(2, 4))
        yield from api.wait_recv(2)

    runtime.set_program(0, sender)
    runtime.set_program(1, late_receiver)
    return runtime


def timer_factory(seed):
    """A burst of puts under (cq_count, cq_usec) moderation: timers arm."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            seed=seed,
            latency="constant",
            cq_moderation_timer=(3, 2.0),
        )
    )
    runtime.declare_array("cells", 8, owner=1, initial=0)

    def writer(api):
        for index in range(8):
            api.iput("cells", index + 1, index=index)
        yield from api.wait_all()

    def idle(api):
        yield from api.compute(1.0)

    runtime.set_program(0, writer)
    runtime.set_program(1, idle)
    return runtime


def resync_factory(seed):
    """Enough sparse-wire traffic on one channel for an adaptive resync."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            seed=seed,
            latency="constant",
            clock_transport="piggyback",
            clock_wire="delta",
            clock_wire_resync="adaptive",
        )
    )
    runtime.declare_array("cells", 4, owner=1, initial=0)

    def writer(api):
        # The adaptive cadence starts at 64 messages per channel; cross it.
        for step in range(70):
            yield from api.put("cells", step, index=step % 4)

    def idle(api):
        yield from api.compute(1.0)

    runtime.set_program(0, writer)
    runtime.set_program(1, idle)
    return runtime


def barrier_factory(seed):
    """Three ranks crossing two barriers: fan-out order is a choice point."""
    runtime = DSMRuntime(RuntimeConfig(world_size=3, seed=seed, latency="constant"))
    runtime.declare_array("cells", 3, initial=0)

    def program(api):
        yield from api.put("cells", api.rank + 1, index=api.rank)
        yield from api.barrier()
        yield from api.get("cells", index=(api.rank + 1) % 3)
        yield from api.barrier()

    runtime.set_spmd_program(program)
    return runtime


class TestDecisionKinds:
    def test_all_nine_kinds_registered(self):
        assert DECISION_KINDS == (
            "latency", "tie", "rnr", "credit", "cq_timer", "resync", "barrier",
            "drop", "reorder",
        )


class TestCreditDecisions:
    def test_passthrough_logs_every_grant(self):
        outcome = run_schedule(credit_factory, 0, PassthroughStrategy())
        grants = decisions_of(outcome.decisions, "credit")
        assert grants, "a stalled credit-mode send must produce credit decisions"
        assert all(d.choice == 0.0 for d in grants)
        assert all(d.key.startswith("credit:1->0#") for d in grants)
        assert outcome.final_values["inbox"] == (7, 8, 9, 10)

    def test_recorded_log_replays_byte_identically(self):
        baseline = run_schedule(credit_factory, 0, PassthroughStrategy())
        replayed = run_schedule(
            credit_factory, 0, ReplayStrategy(baseline.decisions)
        )
        assert replayed.fingerprint == baseline.fingerprint
        assert replayed.decisions == baseline.decisions

    def test_fuzzer_stretches_grants_deterministically(self):
        def fuzzed():
            return run_schedule(
                credit_factory,
                0,
                ScheduleFuzzer(seed=11, reorder_probability=1.0, quantum=1.0),
            )

        first, second = fuzzed(), fuzzed()
        stretched = [
            d for d in decisions_of(first.decisions, "credit") if d.choice > 0.0
        ]
        assert stretched, "a p=1.0 fuzzer must delay at least one grant"
        assert first.decisions == second.decisions
        assert first.final_values["inbox"] == (7, 8, 9, 10)

    def test_fuzzed_grant_replays_from_the_log_alone(self):
        fuzzed = run_schedule(
            credit_factory,
            0,
            ScheduleFuzzer(seed=11, reorder_probability=1.0, quantum=1.0),
        )
        replayed = run_schedule(
            credit_factory, 0, ReplayStrategy(fuzzed.decisions)
        )
        assert replayed.fingerprint == fuzzed.fingerprint
        assert replayed.elapsed_sim_time == fuzzed.elapsed_sim_time

    def test_systematic_branches_on_grant_timing(self):
        strategy = SystematicStrategy({}, branch_factor=2, max_branch_points=32)
        run_schedule(credit_factory, 0, strategy)
        assert any(k.startswith("credit:") for k in strategy.branch_points)


class TestCqTimerDecisions:
    def test_passthrough_logs_every_armed_timer(self):
        outcome = run_schedule(timer_factory, 0, PassthroughStrategy())
        timers = decisions_of(outcome.decisions, "cq_timer")
        assert timers, "an armed moderation timer must produce cq_timer decisions"
        assert all(d.choice == 0.0 for d in timers)
        assert all(d.key.startswith("cq_timer:P0#") for d in timers)
        assert outcome.final_values["cells"] == (1, 2, 3, 4, 5, 6, 7, 8)

    def test_recorded_log_replays_byte_identically(self):
        baseline = run_schedule(timer_factory, 0, PassthroughStrategy())
        replayed = run_schedule(timer_factory, 0, ReplayStrategy(baseline.decisions))
        assert replayed.fingerprint == baseline.fingerprint
        assert replayed.decisions == baseline.decisions

    def test_fuzzer_races_expiry_against_arrivals(self):
        def fuzzed():
            return run_schedule(
                timer_factory,
                0,
                ScheduleFuzzer(seed=5, reorder_probability=1.0, quantum=1.0),
            )

        first, second = fuzzed(), fuzzed()
        stretched = [
            d for d in decisions_of(first.decisions, "cq_timer") if d.choice > 0.0
        ]
        assert stretched, "a p=1.0 fuzzer must stretch at least one timer"
        assert first.decisions == second.decisions
        replayed = run_schedule(timer_factory, 0, ReplayStrategy(first.decisions))
        assert replayed.fingerprint == first.fingerprint

    def test_systematic_branches_on_timer_expiry(self):
        strategy = SystematicStrategy({}, branch_factor=2, max_branch_points=32)
        run_schedule(timer_factory, 0, strategy)
        assert any(k.startswith("cq_timer:") for k in strategy.branch_points)


class TestResyncDecisions:
    def test_passthrough_logs_every_due_resync(self):
        outcome = run_schedule(resync_factory, 0, PassthroughStrategy())
        resyncs = decisions_of(outcome.decisions, "resync")
        assert resyncs, "a due adaptive resync must produce resync decisions"
        assert all(d.choice == 0 for d in resyncs)
        assert all(d.key.startswith("resync:0->1#") for d in resyncs)

    def test_recorded_log_replays_byte_identically(self):
        baseline = run_schedule(resync_factory, 0, PassthroughStrategy())
        replayed = run_schedule(
            resync_factory, 0, ReplayStrategy(baseline.decisions)
        )
        assert replayed.fingerprint == baseline.fingerprint
        assert replayed.decisions == baseline.decisions

    def test_deferring_a_resync_is_sound_and_logged(self):
        # A resync comes due only after ~64 channel messages, far past the
        # default branch-point cap — raise it so the late key registers.
        baseline_strategy = SystematicStrategy({}, branch_factor=3,
                                               max_branch_points=4096)
        baseline = run_schedule(resync_factory, 0, baseline_strategy)
        key = next(
            k for k in baseline_strategy.branch_points if k.startswith("resync:")
        )
        forced = run_schedule(
            resync_factory,
            0,
            SystematicStrategy({key: 2}, branch_factor=3, max_branch_points=4096),
        )
        deferred = decisions_of(forced.decisions, "resync")
        assert any(d.choice > 0 for d in deferred), (
            "forcing a resync slot must defer the full frame"
        )
        # Deferral is pure byte accounting: sparse frames decode exactly,
        # so the observable run is unchanged.
        assert forced.fingerprint == baseline.fingerprint
        assert forced.final_values == baseline.final_values


class TestBarrierDecisions:
    def test_passthrough_logs_fanout_picks_in_arrival_order(self):
        outcome = run_schedule(barrier_factory, 0, PassthroughStrategy())
        picks = decisions_of(outcome.decisions, "barrier")
        # Two crossings, three ranks: the controller picks while >1 remain,
        # so each crossing logs world_size - 1 decisions.
        assert len(picks) == 4
        assert all(d.choice == 0 for d in picks), (
            "passthrough must release in arrival order"
        )
        assert all(d.key.startswith("barrier:g") for d in picks)

    def test_recorded_log_replays_byte_identically(self):
        baseline = run_schedule(barrier_factory, 0, PassthroughStrategy())
        replayed = run_schedule(
            barrier_factory, 0, ReplayStrategy(baseline.decisions)
        )
        assert replayed.fingerprint == baseline.fingerprint
        assert replayed.decisions == baseline.decisions

    def test_fuzzer_shuffles_release_order_deterministically(self):
        def fuzzed():
            return run_schedule(
                barrier_factory,
                0,
                ScheduleFuzzer(seed=3, tie_shuffle_probability=1.0),
            )

        first, second = fuzzed(), fuzzed()
        shuffled = [
            d for d in decisions_of(first.decisions, "barrier") if d.choice != 0
        ]
        assert shuffled, "a p=1.0 shuffler must reorder at least one release"
        assert first.decisions == second.decisions
        replayed = run_schedule(
            barrier_factory, 0, ReplayStrategy(first.decisions)
        )
        assert replayed.fingerprint == first.fingerprint

    def test_systematic_branches_on_release_order(self):
        strategy = SystematicStrategy({}, branch_factor=2, max_branch_points=32)
        run_schedule(barrier_factory, 0, strategy)
        assert any(k.startswith("barrier:") for k in strategy.branch_points)

    def test_choices_stay_within_remaining_waiters(self):
        outcome = run_schedule(
            barrier_factory, 0, ScheduleFuzzer(seed=9, tie_shuffle_probability=1.0)
        )
        picks = decisions_of(outcome.decisions, "barrier")
        assert picks
        for pick in picks:
            assert 0 <= pick.choice < 3
