"""The subsystem's acceptance bar, from the issue:

* the systematic searcher finds every ground-truth race the fuzzer finds
  with a **strictly smaller** schedule budget;
* the campaign report shows matrix-clock detection flagging each injected
  race in **100%** of explored schedules;
* exploration is fully deterministic: same seed/budget → identical
  schedules and verdicts.
"""

from repro.explore import Explorer
from repro.explore.campaign import CampaignConfig, run_campaign
from repro.workloads.racy_patterns import pattern_corpus

CORPUS = {p.name: p for p in pattern_corpus()}

#: The injected-race corpus: labelled-racy patterns whose race manifests at
#: delivery-reordering timescales (fig5c's outcome flip needs a >30-time-unit
#: delay — its *detection* is still checked below, in every schedule).
INJECTED = ["fig5a-concurrent-puts", "write-after-read-unsync", "unsynchronized-counter"]

FUZZ_BUDGET = 10
SYSTEMATIC_BUDGET = 6
QUANTUM = 4.0


def test_systematic_beats_fuzzer_on_a_strictly_smaller_budget():
    assert SYSTEMATIC_BUDGET < FUZZ_BUDGET
    for name in INJECTED:
        explorer = Explorer(CORPUS[name].build, seed=0)
        fuzzed = explorer.explore_fuzzed(FUZZ_BUDGET, quantum=QUANTUM)
        systematic = explorer.explore_systematic(
            SYSTEMATIC_BUDGET, branch_factor=3, quantum=QUANTUM
        )
        fuzz_found = fuzzed.ground_truth_racy_symbols()
        systematic_found = systematic.ground_truth_racy_symbols()
        assert fuzz_found <= systematic_found, (
            f"{name}: fuzzer found {fuzz_found} in {FUZZ_BUDGET} schedules, "
            f"systematic only {systematic_found} in {SYSTEMATIC_BUDGET}"
        )
        # And the labelled race is genuinely in the systematic searcher's
        # reach at this budget — the comparison is not vacuous.
        assert CORPUS[name].racy_symbols <= systematic_found, name


def test_systematic_dedup_prunes_equivalent_schedules():
    pruned = 0
    for name in INJECTED:
        result = Explorer(CORPUS[name].build, seed=0).explore_systematic(
            SYSTEMATIC_BUDGET, branch_factor=3, quantum=QUANTUM
        )
        pruned += result.deduplicated
        # Dedup may only skip *expansion*, never distort verdicts.
        assert result.schedules_run <= SYSTEMATIC_BUDGET
    assert pruned > 0, "no equivalent schedule was ever deduplicated"


def test_campaign_reports_matrix_clock_flagging_every_injected_race():
    config = CampaignConfig(
        strategy="systematic",
        budget=SYSTEMATIC_BUDGET,
        seed=0,
        branch_factor=3,
        quantum=QUANTUM,
    )
    report = run_campaign(config, patterns=INJECTED)
    consistency = report.matrix_clock_consistency()
    for name in INJECTED:
        for symbol in CORPUS[name].racy_symbols:
            assert consistency[name][symbol] == 1.0, (
                f"{name}: matrix-clock flagged {symbol} in only "
                f"{consistency[name][symbol]:.0%} of schedules"
            )
    assert report.fully_consistent()
    assert "HOLDS" in report.to_markdown()


def test_campaign_rerun_reproduces_identical_schedules_and_verdicts():
    config = CampaignConfig(
        strategy="systematic", budget=4, seed=0, branch_factor=2, quantum=QUANTUM
    )
    first = run_campaign(config, patterns=INJECTED)
    second = run_campaign(config, patterns=INJECTED)
    assert first.to_json() == second.to_json()


def test_detection_holds_even_where_the_outcome_cannot_flip():
    """fig5c: no explored schedule flips the outcome (the racing arrival
    needs a delay far beyond the perturbation scale), yet the clocks flag
    the race in every single schedule — detection sees what outcome
    comparison cannot."""
    explorer = Explorer(CORPUS["fig5c-arrival-race"].build, seed=0)
    result = explorer.explore_systematic(SYSTEMATIC_BUDGET, branch_factor=3, quantum=QUANTUM)
    assert result.ground_truth_racy_symbols() == set()
    assert result.flag_fraction("matrix-clock", "a") == 1.0
