"""Fuzzed exploration: deterministic, divergent, and honest about ground truth."""

from repro.explore import Explorer
from repro.workloads.racy_patterns import pattern_corpus

CORPUS = {p.name: p for p in pattern_corpus()}


def explore(name, budget=8, **knobs):
    pattern = CORPUS[name]
    return Explorer(pattern.build, seed=0).explore_fuzzed(budget, **knobs)


def test_exploration_is_deterministic():
    first = explore("fig5a-concurrent-puts", quantum=4.0)
    second = explore("fig5a-concurrent-puts", quantum=4.0)
    assert [o.fingerprint for o in first.outcomes] == [
        o.fingerprint for o in second.outcomes
    ]
    assert [o.final_values for o in first.outcomes] == [
        o.final_values for o in second.outcomes
    ]
    assert first.as_dict() == second.as_dict()


def test_fuzzing_reaches_multiple_interleavings():
    result = explore("fig5a-concurrent-puts", quantum=4.0)
    assert result.distinct_fingerprints >= 2
    # The racing writes genuinely land in both orders across schedules.
    finals = {o.final_values["a"] for o in result.outcomes}
    assert len(finals) == 2


def test_schedule_space_ground_truth_on_labelled_patterns():
    racy = explore("fig5a-concurrent-puts", quantum=4.0)
    assert racy.ground_truth_racy_symbols() == {"a"}
    clean = explore("fig4-concurrent-reads", quantum=4.0)
    assert clean.ground_truth_racy_symbols() == set()
    # Per-cell read divergence counts too, not just final values: the
    # reader of write-after-read observes 'original' in some schedules and
    # 'overwritten' in others while the final value never changes.
    war = explore("write-after-read-unsync", budget=10, quantum=4.0)
    finals = {o.final_values["shared"] for o in war.outcomes}
    assert finals == {("overwritten",)}
    assert war.ground_truth_racy_symbols() == {"shared"}


def test_matrix_clock_flags_in_every_fuzzed_schedule():
    """The paper's claim, on the fuzzer's sample of the schedule space."""
    for name in ["fig5a-concurrent-puts", "fig5c-arrival-race", "unsynchronized-counter"]:
        result = explore(name, quantum=4.0)
        for symbol in CORPUS[name].racy_symbols:
            assert result.flag_fraction("matrix-clock", symbol) == 1.0, (
                f"{name}: matrix-clock missed {symbol} in some schedule"
            )


def test_race_free_patterns_stay_clean_in_every_schedule():
    for name in ["fig4-concurrent-reads", "disjoint-cells", "rmw-with-barriers"]:
        result = explore(name, budget=6, quantum=4.0)
        assert result.flagged_in_any("matrix-clock") == set(), name


def test_reorder_aggressiveness_zero_is_the_baseline():
    result = explore(
        "unsynchronized-counter", budget=4, reorder_probability=1.0,
        reorder_aggressiveness=0.0, tie_shuffle_probability=0.0,
    )
    assert result.distinct_fingerprints == 1
