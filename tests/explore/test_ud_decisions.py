"""UD datagram fates as first-class schedule decisions.

The transport tentpole's exploration contract: every datagram's fate
(deliver / drop / duplicate) and extra unclamped delay route through the
schedule controller as ``drop`` and ``reorder`` decisions — logged,
replayable from the log alone, fuzzable with seed-pure rates, and
systematically branchable.  And across *every* explored drop/reorder
schedule, the detector still flags the seeded race: recovery machinery
never launders a race into silence.
"""

from repro.explore.controller import (
    PassthroughStrategy,
    ReplayStrategy,
    ScheduleController,
)
from repro.explore.fuzzer import ScheduleFuzzer
from repro.explore.runner import MATRIX_CLOCK, Explorer, run_schedule
from repro.explore.systematic import SystematicStrategy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig

from tests.net.test_ud_transport import sparse_wire_factory


def decisions_of(log, kind):
    return [d for d in log.entries if d is not None and d.kind == kind]


def ud_factory(seed):
    return sparse_wire_factory(seed)


class TestPassthrough:
    def test_every_datagram_logs_a_fate_and_a_delay(self):
        outcome = run_schedule(ud_factory, 0, PassthroughStrategy())
        fates = decisions_of(outcome.decisions, "drop")
        delays = decisions_of(outcome.decisions, "reorder")
        assert fates, "UD datagrams must produce drop decisions"
        assert len(delays) == len(fates), (
            "every delivered datagram draws exactly one reorder decision"
        )
        assert all(d.choice == 0 for d in fates)
        assert all(d.choice == 0.0 for d in delays)
        assert all(d.key.startswith("drop:") for d in fates)
        assert all(d.key.startswith("reorder:") for d in delays)

    def test_rc_runs_never_consult_the_datagram_decisions(self):
        outcome = run_schedule(
            lambda seed: sparse_wire_factory(seed, transport="rc"),
            0,
            PassthroughStrategy(),
        )
        assert not decisions_of(outcome.decisions, "drop")
        assert not decisions_of(outcome.decisions, "reorder")


class TestFuzzing:
    def _fuzzed(self):
        return run_schedule(
            ud_factory,
            0,
            ScheduleFuzzer(
                seed=13,
                reorder_probability=0.5,
                quantum=1.0,
                drop_probability=0.3,
                duplicate_probability=0.2,
            ),
        )

    def test_rates_produce_drops_and_duplicates_deterministically(self):
        first, second = self._fuzzed(), self._fuzzed()
        fates = [d.choice for d in decisions_of(first.decisions, "drop")]
        assert 1 in fates, "a 0.3 drop rate over a put storm must drop"
        assert 2 in fates, "a 0.2 duplicate rate over a put storm must dup"
        assert first.decisions == second.decisions
        assert first.fingerprint == second.fingerprint

    def test_fuzzed_schedule_replays_from_the_log_alone(self):
        fuzzed = self._fuzzed()
        replayed = run_schedule(ud_factory, 0, ReplayStrategy(fuzzed.decisions))
        assert replayed.fingerprint == fuzzed.fingerprint
        assert replayed.decisions == fuzzed.decisions
        assert replayed.elapsed_sim_time == fuzzed.elapsed_sim_time
        assert replayed.final_values == fuzzed.final_values

    def test_zero_rates_never_drop(self):
        outcome = run_schedule(
            ud_factory,
            0,
            ScheduleFuzzer(seed=13, reorder_probability=0.0),
        )
        assert all(
            d.choice == 0 for d in decisions_of(outcome.decisions, "drop")
        )


class TestSystematic:
    def test_search_branches_on_datagram_fates(self):
        strategy = SystematicStrategy({}, branch_factor=3, max_branch_points=64)
        run_schedule(ud_factory, 0, strategy)
        assert any(k.startswith("drop:") for k in strategy.branch_points)

    def test_forcing_a_drop_slot_drops_and_recovers(self):
        probe = SystematicStrategy({}, branch_factor=3, max_branch_points=64)
        baseline = run_schedule(ud_factory, 0, probe)
        key = next(k for k in probe.branch_points if k.startswith("drop:"))
        forced = run_schedule(
            ud_factory,
            0,
            SystematicStrategy({key: 1}, branch_factor=3, max_branch_points=64),
        )
        dropped = [
            d for d in decisions_of(forced.decisions, "drop") if d.choice == 1
        ]
        assert dropped, "forcing a drop slot must lose that datagram"
        # Recovery preserves the verdict and the observable behaviour.
        assert forced.flagged[MATRIX_CLOCK] == baseline.flagged[MATRIX_CLOCK]
        assert forced.final_values == baseline.final_values


class TestEveryScheduleGuarantee:
    def test_race_flagged_in_all_fuzzed_drop_reorder_schedules(self):
        """The acceptance bar: 100% of explored schedules with nonzero
        drop/duplicate/reorder rates still flag the seeded race."""
        result = Explorer(ud_factory, seed=0).explore_fuzzed(
            8,
            reorder_probability=0.5,
            drop_probability=0.25,
            duplicate_probability=0.15,
        )
        assert result.schedules_run == 8
        for outcome in result.outcomes:
            assert "shared" in outcome.flagged[MATRIX_CLOCK], (
                f"schedule {outcome.schedule_id} lost the seeded race"
            )
        # The exploration genuinely exercised the UD machinery.
        fates = [
            d.choice
            for outcome in result.outcomes
            for d in decisions_of(outcome.decisions, "drop")
        ]
        assert 1 in fates and 2 in fates
