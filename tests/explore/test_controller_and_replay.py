"""The schedule controller's core contract: owned, logged, replayable.

Exploration is only trustworthy if (a) a controller with a passthrough
strategy changes nothing, (b) a recorded decision log replays to a
byte-identical schedule, and (c) divergence between a log and the program it
is applied to is *detected*, not silently absorbed.
"""

import pytest

from repro.explore import (
    PassthroughStrategy,
    ReplayDivergence,
    ReplayStrategy,
    ScheduleController,
    ScheduleFuzzer,
    run_schedule,
)
from repro.explore.decisions import Decision, DecisionLog
from repro.workloads.racy_patterns import pattern_corpus

CORPUS = {p.name: p for p in pattern_corpus()}


def test_passthrough_controller_matches_bare_run():
    pattern = CORPUS["fig5a-concurrent-puts"]
    bare = pattern.build(0).run()
    controlled = run_schedule(pattern.build, 0, PassthroughStrategy())
    assert controlled.final_values == {
        s: tuple(v) for s, v in bare.final_shared_values.items()
    }
    assert controlled.flagged["matrix-clock"] == {
        s for s in bare.races.by_symbol() if s is not None
    }
    assert controlled.elapsed_sim_time == bare.elapsed_sim_time
    # Every choice point was logged as a default decision.
    assert len(controlled.decisions) > 0
    assert not controlled.decisions.non_default()


@pytest.mark.parametrize(
    "name", ["fig5a-concurrent-puts", "unsynchronized-counter", "producer-consumer-unsync"]
)
def test_fuzzed_schedule_replays_identically(name):
    pattern = CORPUS[name]
    fuzzed = run_schedule(
        pattern.build, 0, ScheduleFuzzer(seed=7, reorder_probability=0.5, quantum=4.0)
    )
    replayed = run_schedule(pattern.build, 0, ReplayStrategy(fuzzed.decisions))
    assert replayed.decisions == fuzzed.decisions
    assert replayed.fingerprint == fuzzed.fingerprint
    assert replayed.final_values == fuzzed.final_values
    assert replayed.read_values == fuzzed.read_values
    assert replayed.flagged["matrix-clock"] == fuzzed.flagged["matrix-clock"]
    assert replayed.elapsed_sim_time == fuzzed.elapsed_sim_time


def test_same_fuzz_seed_reproduces_same_schedule():
    pattern = CORPUS["unsynchronized-counter"]
    first = run_schedule(pattern.build, 0, ScheduleFuzzer(seed=3, quantum=4.0))
    second = run_schedule(pattern.build, 0, ScheduleFuzzer(seed=3, quantum=4.0))
    assert first.decisions == second.decisions
    assert first.fingerprint == second.fingerprint
    assert first.final_values == second.final_values


def test_truncated_log_replays_prefix_with_defaults_after():
    pattern = CORPUS["unsynchronized-counter"]
    fuzzed = run_schedule(
        pattern.build, 0, ScheduleFuzzer(seed=5, reorder_probability=0.6, quantum=4.0)
    )
    assert fuzzed.decisions.non_default(), "fuzz produced no perturbations to truncate"
    truncated = run_schedule(pattern.build, 0, ReplayStrategy(fuzzed.decisions.prefix(0)))
    baseline = run_schedule(pattern.build, 0, PassthroughStrategy())
    assert truncated.fingerprint == baseline.fingerprint
    assert truncated.final_values == baseline.final_values


def test_replay_divergence_is_detected():
    pattern = CORPUS["fig5a-concurrent-puts"]
    recorded = run_schedule(pattern.build, 0, PassthroughStrategy())
    bogus = DecisionLog(
        [Decision("latency", "latency:9->9#0", 2.5)]
        + recorded.decisions.entries[1:]
    )
    with pytest.raises(Exception) as excinfo:
        run_schedule(pattern.build, 0, ReplayStrategy(bogus))
    assert isinstance(
        excinfo.value.__cause__ if excinfo.value.__cause__ else excinfo.value,
        ReplayDivergence,
    ) or "diverged" in str(excinfo.value)


def test_decision_log_json_round_trip():
    pattern = CORPUS["unsynchronized-counter"]
    fuzzed = run_schedule(pattern.build, 0, ScheduleFuzzer(seed=11, quantum=4.0))
    restored = DecisionLog.from_jsonable(fuzzed.decisions.to_jsonable())
    assert restored == fuzzed.decisions
    replayed = run_schedule(pattern.build, 0, ReplayStrategy(restored))
    assert replayed.fingerprint == fuzzed.fingerprint


def test_controller_cannot_be_installed_twice_or_late():
    from repro.sim.engine import Simulator
    from repro.sim.events import SimulationError

    sim = Simulator(seed=0)
    sim.install_controller(ScheduleController(PassthroughStrategy()))
    with pytest.raises(SimulationError):
        sim.install_controller(ScheduleController(PassthroughStrategy()))

    sim2 = Simulator(seed=0)
    sim2.call_after(1.0, lambda: None)
    sim2.run()
    with pytest.raises(SimulationError):
        sim2.install_controller(ScheduleController(PassthroughStrategy()))
