"""Unit tests for access records and the coherence reference checker."""

import pytest

from repro.memory.address import GlobalAddress
from repro.memory.consistency import (
    AccessKind,
    ConsistencyViolation,
    MemoryAccess,
    SequentialConsistencyChecker,
)


def access(access_id, rank, offset, kind, value, time):
    return MemoryAccess(
        access_id=access_id,
        rank=rank,
        address=GlobalAddress(0, offset),
        kind=kind,
        value=value,
        time=time,
    )


class TestMemoryAccess:
    def test_conflicts_require_same_cell_and_a_write(self):
        write = access(0, 0, 0, AccessKind.WRITE, 1, 0.0)
        read_same = access(1, 1, 0, AccessKind.READ, 1, 1.0)
        read_other = access(2, 1, 1, AccessKind.READ, 1, 1.0)
        other_read = access(3, 2, 0, AccessKind.READ, 1, 2.0)
        assert write.conflicts_with(read_same)
        assert read_same.conflicts_with(write)
        assert not write.conflicts_with(read_other)
        assert not read_same.conflicts_with(other_read)

    def test_kind_is_write_flag(self):
        assert AccessKind.WRITE.is_write
        assert not AccessKind.READ.is_write


class TestConsistencyChecker:
    def test_coherent_history_passes(self):
        history = [
            access(0, 0, 0, AccessKind.WRITE, "a", 1.0),
            access(1, 1, 0, AccessKind.READ, "a", 2.0),
            access(2, 0, 0, AccessKind.WRITE, "b", 3.0),
            access(3, 2, 0, AccessKind.READ, "b", 4.0),
        ]
        assert SequentialConsistencyChecker().check(history) == []

    def test_read_of_stale_value_is_flagged(self):
        history = [
            access(0, 0, 0, AccessKind.WRITE, "new", 1.0),
            access(1, 1, 0, AccessKind.READ, "old", 2.0),
        ]
        violations = SequentialConsistencyChecker().check(history)
        assert len(violations) == 1
        assert "P1" in violations[0]

    def test_initial_values_are_honoured(self):
        initial = {GlobalAddress(0, 0): "init"}
        history = [access(0, 1, 0, AccessKind.READ, "init", 1.0)]
        assert SequentialConsistencyChecker(initial).check(history) == []
        assert SequentialConsistencyChecker().check(history) != []

    def test_check_or_raise(self):
        history = [
            access(0, 0, 0, AccessKind.WRITE, 1, 1.0),
            access(1, 1, 0, AccessKind.READ, 2, 2.0),
        ]
        with pytest.raises(ConsistencyViolation):
            SequentialConsistencyChecker().check_or_raise(history)

    def test_order_is_by_time_then_id(self):
        # Two writes at the same time: the higher access_id is "later".
        history = [
            access(1, 0, 0, AccessKind.WRITE, "second", 1.0),
            access(0, 1, 0, AccessKind.WRITE, "first", 1.0),
            access(2, 2, 0, AccessKind.READ, "second", 2.0),
        ]
        assert SequentialConsistencyChecker().check(history) == []

    def test_final_values(self):
        history = [
            access(0, 0, 0, AccessKind.WRITE, "a", 1.0),
            access(1, 0, 1, AccessKind.WRITE, "b", 2.0),
            access(2, 1, 0, AccessKind.WRITE, "c", 3.0),
        ]
        finals = SequentialConsistencyChecker.final_values(history)
        assert finals == {GlobalAddress(0, 0): "c", GlobalAddress(0, 1): "b"}
