"""Unit tests for private and public memory segments."""

import pytest

from repro.memory.address import GlobalAddress
from repro.memory.private import PrivateMemory
from repro.memory.public import MemoryCell, PublicMemory
from repro.core.clocks import VectorClock


class TestPrivateMemory:
    def test_read_write_roundtrip(self):
        memory = PrivateMemory(rank=0)
        memory.write("x", 42)
        assert memory.read("x") == 42
        assert "x" in memory and len(memory) == 1

    def test_read_missing_returns_default(self):
        memory = PrivateMemory(0)
        assert memory.read("missing") is None
        assert memory.read("missing", default=7) == 7

    def test_read_required_raises_for_missing(self):
        with pytest.raises(KeyError):
            PrivateMemory(0).read_required("missing")

    def test_counters_track_accesses(self):
        memory = PrivateMemory(0)
        memory.write("a", 1)
        memory.write("b", 2)
        memory.read("a")
        assert memory.write_count == 2 and memory.read_count == 1

    def test_delete_and_snapshot(self):
        memory = PrivateMemory(0)
        memory.write("a", 1)
        snapshot = memory.snapshot()
        memory.delete("a")
        assert "a" not in memory
        assert snapshot == {"a": 1}

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            PrivateMemory(-1)


class TestPublicMemory:
    def test_register_region_and_resolve_cells(self):
        memory = PublicMemory(rank=1, size=16)
        region = memory.register_region("x", 4)
        assert region.owner == 1 and region.base == 0 and len(region) == 4
        assert memory.allocated == 4
        second = memory.register_region("y", 2)
        assert second.base == 4

    def test_duplicate_region_name_rejected(self):
        memory = PublicMemory(0, 8)
        memory.register_region("x", 1)
        with pytest.raises(ValueError):
            memory.register_region("x", 1)

    def test_exhaustion_raises_memory_error(self):
        memory = PublicMemory(0, 4)
        memory.register_region("x", 3)
        with pytest.raises(MemoryError):
            memory.register_region("y", 2)

    def test_read_write_and_counters(self):
        memory = PublicMemory(0, 8)
        address = GlobalAddress(0, 3)
        memory.write(address, "v", writer=2)
        assert memory.read(address) == "v"
        cell = memory.cell(address)
        assert cell.write_count == 1 and cell.read_count == 1
        assert cell.last_writer == 2
        assert memory.total_reads() == 1 and memory.total_writes() == 1

    def test_peek_does_not_count(self):
        memory = PublicMemory(0, 8)
        address = GlobalAddress(0, 0)
        memory.write(address, 1)
        memory.peek(address)
        assert memory.cell(address).read_count == 0

    def test_foreign_address_rejected(self):
        memory = PublicMemory(0, 8)
        with pytest.raises(ValueError):
            memory.read(GlobalAddress(1, 0))

    def test_out_of_bounds_offset_rejected(self):
        memory = PublicMemory(0, 8)
        with pytest.raises(IndexError):
            memory.read(GlobalAddress(0, 8))

    def test_region_containing(self):
        memory = PublicMemory(0, 16)
        memory.register_region("x", 4)
        region = memory.region_containing(GlobalAddress(0, 2))
        assert region is not None and region.name == "x"
        assert memory.region_containing(GlobalAddress(0, 10)) is None

    def test_clock_storage_entries_counts_both_clocks(self):
        memory = PublicMemory(0, 4)
        address = GlobalAddress(0, 0)
        cell = memory.cell(address)
        assert memory.clock_storage_entries() == 0
        cell.access_clock = VectorClock.zeros(3)
        cell.write_clock = VectorClock.zeros(3)
        assert memory.clock_storage_entries() == 6

    def test_snapshot_values(self):
        memory = PublicMemory(0, 3)
        memory.write(GlobalAddress(0, 1), "b")
        assert memory.snapshot_values() == [None, "b", None]


class TestMemoryCell:
    def test_defaults(self):
        cell = MemoryCell()
        assert cell.value is None
        assert cell.clock_storage_entries() == 0

    def test_clock_storage_with_one_clock(self):
        cell = MemoryCell(access_clock=VectorClock.zeros(4))
        assert cell.clock_storage_entries() == 4
