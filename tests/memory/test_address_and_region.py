"""Unit tests for global addresses, address ranges and memory regions."""

import pytest

from repro.memory.address import AddressRange, GlobalAddress
from repro.memory.region import MemoryRegion


class TestGlobalAddress:
    def test_fields_and_str(self):
        address = GlobalAddress(2, 7)
        assert address.rank == 2 and address.offset == 7
        assert str(address) == "P2[7]"

    def test_hashable_and_equal_by_value(self):
        assert GlobalAddress(1, 2) == GlobalAddress(1, 2)
        assert len({GlobalAddress(1, 2), GlobalAddress(1, 2)}) == 1

    def test_total_order_by_rank_then_offset(self):
        addresses = [GlobalAddress(1, 0), GlobalAddress(0, 9), GlobalAddress(0, 1)]
        assert sorted(addresses) == [
            GlobalAddress(0, 1),
            GlobalAddress(0, 9),
            GlobalAddress(1, 0),
        ]

    def test_shifted(self):
        assert GlobalAddress(0, 3).shifted(4) == GlobalAddress(0, 7)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            GlobalAddress(-1, 0)
        with pytest.raises(ValueError):
            GlobalAddress(0, -1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            GlobalAddress(True, 0)


class TestAddressRange:
    def test_contains_and_bounds(self):
        block = AddressRange(GlobalAddress(1, 10), 5)
        assert block.contains(GlobalAddress(1, 10))
        assert block.contains(GlobalAddress(1, 14))
        assert not block.contains(GlobalAddress(1, 15))
        assert not block.contains(GlobalAddress(0, 12))
        assert block.end_offset == 15 and len(block) == 5

    def test_overlaps(self):
        a = AddressRange(GlobalAddress(0, 0), 10)
        b = AddressRange(GlobalAddress(0, 9), 3)
        c = AddressRange(GlobalAddress(0, 10), 3)
        d = AddressRange(GlobalAddress(1, 0), 10)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)
        assert not a.overlaps(d)

    def test_addresses_iterates_every_cell(self):
        block = AddressRange(GlobalAddress(2, 4), 3)
        assert list(block.addresses()) == [
            GlobalAddress(2, 4), GlobalAddress(2, 5), GlobalAddress(2, 6)
        ]


class TestMemoryRegion:
    def test_address_of_and_index_of_are_inverse(self):
        region = MemoryRegion(name="x", owner=1, base=10, length=4)
        for index in range(4):
            address = region.address_of(index)
            assert region.index_of(address) == index
            assert region.contains(address)

    def test_address_of_out_of_bounds(self):
        region = MemoryRegion(name="x", owner=0, base=0, length=2)
        with pytest.raises(IndexError):
            region.address_of(2)
        with pytest.raises(IndexError):
            region.address_of(-1)

    def test_index_of_foreign_address_rejected(self):
        region = MemoryRegion(name="x", owner=0, base=0, length=2)
        with pytest.raises(ValueError):
            region.index_of(GlobalAddress(1, 0))

    def test_validation_of_fields(self):
        with pytest.raises(ValueError):
            MemoryRegion(name="", owner=0, base=0, length=1)
        with pytest.raises(ValueError):
            MemoryRegion(name="x", owner=-1, base=0, length=1)
        with pytest.raises(ValueError):
            MemoryRegion(name="x", owner=0, base=0, length=0)

    def test_str_mentions_placement(self):
        region = MemoryRegion(name="halo", owner=3, base=5, length=2)
        assert "halo" in str(region) and "P3" in str(region)
