"""Unit tests for the NIC lock table (Figure 3 semantics)."""

import pytest

from repro.memory.address import GlobalAddress
from repro.memory.locks import LockState, MemoryLockTable
from repro.sim.engine import Simulator
from repro.sim.events import SimulationError


def setup_table(rank=1):
    sim = Simulator()
    return sim, MemoryLockTable(sim, rank)


class TestGrantAndRelease:
    def test_uncontended_lock_granted_immediately(self):
        sim, table = setup_table()
        address = GlobalAddress(1, 0)
        request = table.acquire(address, requester=0)
        sim.run()
        assert request.state is LockState.GRANTED
        assert request.event.triggered and request.event.ok
        assert table.is_locked(address)
        assert table.holder(address) is request

    def test_release_grants_next_waiter_in_fifo_order(self):
        sim, table = setup_table()
        address = GlobalAddress(1, 0)
        first = table.acquire(address, requester=2, purpose="get")
        second = table.acquire(address, requester=0, purpose="put")
        third = table.acquire(address, requester=3, purpose="put")
        sim.run()
        assert first.state is LockState.GRANTED
        assert second.state is LockState.QUEUED and third.state is LockState.QUEUED
        assert table.queue_length(address) == 2

        table.release(first)
        sim.run()
        assert second.state is LockState.GRANTED
        assert third.state is LockState.QUEUED

        table.release(second)
        table.release(third)
        assert not table.is_locked(address)

    def test_contention_counter(self):
        sim, table = setup_table()
        address = GlobalAddress(1, 0)
        table.acquire(address, 0)
        table.acquire(address, 2)
        assert table.contended_acquisitions == 1

    def test_locks_on_distinct_addresses_are_independent(self):
        sim, table = setup_table()
        a, b = GlobalAddress(1, 0), GlobalAddress(1, 1)
        first = table.acquire(a, 0)
        second = table.acquire(b, 2)
        sim.run()
        assert first.state is LockState.GRANTED
        assert second.state is LockState.GRANTED
        assert table.outstanding() == 2


class TestErrors:
    def test_release_by_non_holder_rejected(self):
        sim, table = setup_table()
        address = GlobalAddress(1, 0)
        first = table.acquire(address, 0)
        second = table.acquire(address, 2)
        sim.run()
        with pytest.raises(SimulationError):
            table.release(second)

    def test_double_release_rejected(self):
        sim, table = setup_table()
        request = table.acquire(GlobalAddress(1, 0), 0)
        sim.run()
        table.release(request)
        with pytest.raises(SimulationError):
            table.release(request)

    def test_foreign_address_rejected(self):
        _sim, table = setup_table(rank=1)
        with pytest.raises(ValueError):
            table.acquire(GlobalAddress(0, 0), 2)

    def test_assert_quiescent(self):
        sim, table = setup_table()
        request = table.acquire(GlobalAddress(1, 0), 0)
        sim.run()
        with pytest.raises(SimulationError, match="still held"):
            table.assert_quiescent()
        table.release(request)
        table.assert_quiescent()


class TestTiming:
    def test_wait_time_measured_in_simulated_time(self):
        sim = Simulator()
        table = MemoryLockTable(sim, 1)
        address = GlobalAddress(1, 0)
        first = table.acquire(address, 2)
        second = table.acquire(address, 0)
        sim.run()
        # Release the first lock 4 time units later.
        sim.call_after(4.0, lambda: table.release(first))
        sim.run()
        assert second.granted_at == 4.0
        assert second.wait_time == 4.0

    def test_history_keeps_every_request(self):
        sim, table = setup_table()
        address = GlobalAddress(1, 0)
        table.acquire(address, 0)
        table.acquire(address, 2)
        assert len(table.history()) == 2
        assert [r.requester for r in table.history()] == [0, 2]
