"""Unit tests for the symbol directory ("the compiler")."""

import pytest

from repro.memory.address import GlobalAddress
from repro.memory.directory import PlacementPolicy, SymbolDirectory
from repro.memory.public import PublicMemory


def make_directory(world_size=4, cells=64):
    memories = [PublicMemory(rank, cells) for rank in range(world_size)]
    return SymbolDirectory(memories), memories


class TestScalars:
    def test_explicit_owner_placement(self):
        directory, memories = make_directory()
        directory.declare_scalar("x", owner=2, initial=5)
        address = directory.resolve("x")
        assert address.rank == 2
        assert memories[2].peek(address) == 5
        assert directory.owner_of("x") == 2

    def test_round_robin_placement_cycles(self):
        directory, _ = make_directory(world_size=3)
        owners = [directory.declare_scalar(f"s{i}").regions[0].owner for i in range(6)]
        assert owners == [0, 1, 2, 0, 1, 2]

    def test_duplicate_declaration_rejected(self):
        directory, _ = make_directory()
        directory.declare_scalar("x")
        with pytest.raises(ValueError):
            directory.declare_scalar("x")

    def test_invalid_owner_rejected(self):
        directory, _ = make_directory(world_size=2)
        with pytest.raises(ValueError):
            directory.declare_scalar("x", owner=5)


class TestArrays:
    def test_block_distribution_covers_every_index(self):
        directory, _ = make_directory(world_size=4)
        directory.declare_array("data", 10, policy=PlacementPolicy.BLOCK)
        owners = [directory.owner_of("data", i) for i in range(10)]
        # 10 cells over 4 ranks -> blocks of sizes 3,3,2,2 in rank order.
        assert owners == [0, 0, 0, 1, 1, 1, 2, 2, 3, 3]
        locality = directory.locality_map("data")
        assert locality == {0: 3, 1: 3, 2: 2, 3: 2}

    def test_round_robin_distribution(self):
        directory, _ = make_directory(world_size=3)
        directory.declare_array("cyc", 7, policy=PlacementPolicy.ROUND_ROBIN)
        owners = [directory.owner_of("cyc", i) for i in range(7)]
        assert owners == [0, 1, 2, 0, 1, 2, 0]

    def test_owner_distribution_places_everything_on_one_rank(self):
        directory, _ = make_directory()
        directory.declare_array("all", 5, policy=PlacementPolicy.OWNER, owner=3)
        assert {directory.owner_of("all", i) for i in range(5)} == {3}

    def test_owner_policy_requires_owner(self):
        directory, _ = make_directory()
        with pytest.raises(ValueError):
            directory.declare_array("x", 4, policy=PlacementPolicy.OWNER)

    def test_initial_value_written_everywhere(self):
        directory, memories = make_directory(world_size=2)
        directory.declare_array("init", 4, initial=7)
        for index in range(4):
            address = directory.resolve("init", index)
            assert memories[address.rank].peek(address) == 7

    def test_resolution_addresses_are_distinct(self):
        directory, _ = make_directory(world_size=3)
        directory.declare_array("d", 9, policy=PlacementPolicy.BLOCK)
        addresses = [directory.resolve("d", i) for i in range(9)]
        assert len(set(addresses)) == 9

    def test_out_of_bounds_index_rejected(self):
        directory, _ = make_directory()
        directory.declare_array("d", 3)
        with pytest.raises(IndexError):
            directory.resolve("d", 3)

    def test_unknown_symbol_rejected(self):
        directory, _ = make_directory()
        with pytest.raises(KeyError):
            directory.resolve("nope")


class TestDirectoryConstruction:
    def test_requires_rank_ordered_memories(self):
        memories = [PublicMemory(1, 8), PublicMemory(0, 8)]
        with pytest.raises(ValueError):
            SymbolDirectory(memories)

    def test_requires_at_least_one_memory(self):
        with pytest.raises(ValueError):
            SymbolDirectory([])

    def test_symbols_listing(self):
        directory, _ = make_directory()
        directory.declare_scalar("a")
        directory.declare_array("b", 2)
        assert [s.name for s in directory.symbols()] == ["a", "b"]
        assert directory.symbol("a").is_scalar
        assert not directory.symbol("b").is_scalar
