"""The perf gate demonstrably fails on an injected regression.

Acceptance for the CI satellite: ``tools/perf_gate.py`` compares fresh
benchmark artifacts against committed baselines, tolerates noise and
improvements, and exits non-zero the moment a cost metric (messages, bytes,
events, ...) grows beyond the tolerance — including the sneaky case of a
metric silently disappearing from the artifact.
"""

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "perf_gate", REPO_ROOT / "tools" / "perf_gate.py"
)
perf_gate = importlib.util.module_from_spec(spec)
sys.modules["perf_gate"] = perf_gate
spec.loader.exec_module(perf_gate)


@pytest.fixture(autouse=True)
def _no_ambient_step_summary(monkeypatch):
    """Keep test invocations of main() out of the real CI run summary."""
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)


BASELINE = {
    "format": "repro-bench-clock-wire",
    "version": 1,
    "workloads": {
        "ring": {
            "delta": {
                "total_messages": 200,
                "clock_bytes_per_message": 14.5,
                "wire_bytes_saved": 4000,
                "joins_elided": 12,
                "races": 0,
            },
            "full": {"total_messages": 200, "clock_bytes_per_message": 256.0},
        }
    },
}


class TestCompareTrees:
    def test_identical_trees_pass(self):
        regressions, improvements = perf_gate.compare_trees(
            copy.deepcopy(BASELINE), BASELINE
        )
        assert regressions == [] and improvements == []

    def test_injected_regression_fails(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["workloads"]["ring"]["delta"]["total_messages"] = 260  # +30%
        regressions, _ = perf_gate.compare_trees(fresh, BASELINE, tolerance=0.05)
        assert [f.path for f in regressions] == [
            "workloads.ring.delta.total_messages"
        ]
        assert "200" in regressions[0].describe()

    def test_growth_within_tolerance_passes(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["workloads"]["ring"]["delta"]["clock_bytes_per_message"] = 14.9
        regressions, _ = perf_gate.compare_trees(fresh, BASELINE, tolerance=0.05)
        assert regressions == []

    def test_improvement_is_reported_but_never_fails(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["workloads"]["ring"]["delta"]["total_messages"] = 150
        regressions, improvements = perf_gate.compare_trees(fresh, BASELINE)
        assert regressions == []
        assert [f.path for f in improvements] == [
            "workloads.ring.delta.total_messages"
        ]

    def test_benefit_metrics_are_never_gated(self):
        # joins_elided and wire_bytes_saved DROPPING is not a regression:
        # they are higher-is-better figures, excluded from the cost gate.
        fresh = copy.deepcopy(BASELINE)
        fresh["workloads"]["ring"]["delta"]["wire_bytes_saved"] = 1
        fresh["workloads"]["ring"]["delta"]["joins_elided"] = 0
        regressions, _ = perf_gate.compare_trees(fresh, BASELINE)
        assert regressions == []

    def test_zero_baseline_tolerates_no_growth(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["workloads"]["ring"]["delta"]["races"] = 1
        regressions, _ = perf_gate.compare_trees(fresh, BASELINE)
        assert [f.path for f in regressions] == ["workloads.ring.delta.races"]

    def test_disappeared_metric_is_a_regression(self):
        fresh = copy.deepcopy(BASELINE)
        del fresh["workloads"]["ring"]["delta"]["total_messages"]
        regressions, _ = perf_gate.compare_trees(fresh, BASELINE)
        assert any(f.missing for f in regressions)

    def test_new_fresh_metrics_pass_until_baselined(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["workloads"]["ring"]["delta"]["completion_events"] = 999
        regressions, _ = perf_gate.compare_trees(fresh, BASELINE)
        assert regressions == []


class TestCliGate:
    def _write(self, directory, name, tree):
        path = directory / name
        path.write_text(json.dumps(tree))
        return path

    def test_exit_zero_on_clean_artifact(self, tmp_path):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_x.json", BASELINE)
        fresh = self._write(tmp_path, "BENCH_x.json", BASELINE)
        assert perf_gate.main([str(fresh), "--baselines", str(baselines)]) == 0

    def test_exit_one_on_injected_regression(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_x.json", BASELINE)
        broken = copy.deepcopy(BASELINE)
        broken["workloads"]["ring"]["full"]["total_messages"] = 400
        fresh = self._write(tmp_path, "BENCH_x.json", broken)
        assert perf_gate.main([str(fresh), "--baselines", str(baselines)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "total_messages" in out

    def test_missing_baseline_fails_with_the_fix(self, tmp_path, capsys):
        fresh = self._write(tmp_path, "BENCH_new.json", BASELINE)
        assert (
            perf_gate.main([str(fresh), "--baselines", str(tmp_path / "nowhere")])
            == 1
        )
        assert "cp " in capsys.readouterr().out

    def test_missing_fresh_artifact_fails(self, tmp_path):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        assert (
            perf_gate.main(
                [str(tmp_path / "BENCH_absent.json"), "--baselines", str(baselines)]
            )
            == 1
        )

    def test_gates_the_real_committed_baselines(self):
        """The committed baselines gate themselves: byte-identical artifacts
        pass, and the gate actually has something to protect."""
        baselines = REPO_ROOT / "benchmarks" / "baselines"
        artifacts = sorted(baselines.glob("BENCH_*.json"))
        assert artifacts, "no committed baselines under benchmarks/baselines/"
        assert (
            perf_gate.main(
                [str(a) for a in artifacts] + ["--baselines", str(baselines)]
            )
            == 0
        )


#: A critical-path-bearing artifact in the shape BENCH_critical_path.json
#: writes: total run time plus per-category path attribution.
PATH_BASELINE = {
    "format": "repro-bench-critical-path",
    "version": 1,
    "rmw-with-barriers": {
        "total_sim_time": 100.0,
        "critical_path": {
            "path_sim_time": 100.0,
            "segments": 40,
            "dominant": "network",
            "categories": {
                "network": 60.0,
                "barrier_wait": 25.0,
                "compute": 15.0,
            },
        },
    },
}


class TestRegressionExplainer:
    """Acceptance: a deliberately injected slowdown is correctly attributed."""

    def _inject_network_slowdown(self, factor=1.2):
        fresh = copy.deepcopy(PATH_BASELINE)
        section = fresh["rmw-with-barriers"]
        extra = section["critical_path"]["categories"]["network"] * (factor - 1.0)
        section["critical_path"]["categories"]["network"] += extra
        section["critical_path"]["path_sim_time"] += extra
        section["total_sim_time"] += extra
        return fresh, extra

    def test_explainer_attributes_the_injected_category(self):
        fresh, extra = self._inject_network_slowdown()
        lines = perf_gate.explain_regression(fresh, PATH_BASELINE)
        assert lines, "a moved critical path must produce an explanation"
        # Header names the section and the total movement.
        assert "critical_path" in lines[0]
        assert f"+{extra:g}" in lines[0]
        # The injected category is the first (biggest) mover, owning 100%
        # of the delta; untouched categories do not appear.
        assert lines[1].split()[0] == "network"
        assert "100% of the delta" in lines[1]
        assert all("barrier_wait" not in line for line in lines)
        assert all("compute" not in line for line in lines)

    def test_explainer_is_silent_when_nothing_moved(self):
        assert perf_gate.explain_regression(PATH_BASELINE, PATH_BASELINE) == []

    def test_gate_prints_the_explanation_on_a_path_regression(
        self, tmp_path, capsys
    ):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        (baselines / "BENCH_cp.json").write_text(json.dumps(PATH_BASELINE))
        fresh, _ = self._inject_network_slowdown()
        fresh_path = tmp_path / "BENCH_cp.json"
        fresh_path.write_text(json.dumps(fresh))
        assert perf_gate.main([str(fresh_path), "--baselines", str(baselines)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "sim_time" in out
        assert "EXPLAIN" in out and "network" in out

    def test_explain_flag_prints_even_when_the_gate_passes(
        self, tmp_path, capsys
    ):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        (baselines / "BENCH_cp.json").write_text(json.dumps(PATH_BASELINE))
        improved = copy.deepcopy(PATH_BASELINE)
        section = improved["rmw-with-barriers"]
        section["critical_path"]["categories"]["network"] = 50.0
        section["critical_path"]["path_sim_time"] = 90.0
        section["total_sim_time"] = 90.0
        fresh_path = tmp_path / "BENCH_cp.json"
        fresh_path.write_text(json.dumps(improved))
        status = perf_gate.main(
            [str(fresh_path), "--baselines", str(baselines), "--explain"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out and "network" in out


class TestStepSummary:
    """Acceptance: the verdict table lands in $GITHUB_STEP_SUMMARY."""

    def _setup(self, tmp_path, fresh_tree):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        (baselines / "BENCH_cp.json").write_text(json.dumps(PATH_BASELINE))
        fresh_path = tmp_path / "BENCH_cp.json"
        fresh_path.write_text(json.dumps(fresh_tree))
        return fresh_path, baselines

    def test_passing_gate_appends_an_ok_row(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        fresh_path, baselines = self._setup(tmp_path, PATH_BASELINE)
        assert perf_gate.main([str(fresh_path), "--baselines", str(baselines)]) == 0
        text = summary.read_text()
        assert "## Perf gate" in text
        assert "| `BENCH_cp.json` | ✅ OK | 0 | 0 | — |" in text

    def test_regression_row_names_the_worst_offender_and_explains(
        self, tmp_path, monkeypatch
    ):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        fresh = copy.deepcopy(PATH_BASELINE)
        section = fresh["rmw-with-barriers"]
        section["critical_path"]["categories"]["network"] = 90.0
        section["critical_path"]["path_sim_time"] = 130.0
        section["total_sim_time"] = 130.0
        fresh_path, baselines = self._setup(tmp_path, fresh)
        assert perf_gate.main([str(fresh_path), "--baselines", str(baselines)]) == 1
        text = summary.read_text()
        assert "❌ REGRESSED" in text
        assert "total_sim_time" in text
        # The --explain attribution rides along on a regression.
        assert "critical-path movement" in text and "network" in text

    def test_appends_rather_than_overwrites(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        summary.write_text("## Earlier step\n")
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        fresh_path, baselines = self._setup(tmp_path, PATH_BASELINE)
        perf_gate.main([str(fresh_path), "--baselines", str(baselines)])
        text = summary.read_text()
        assert text.startswith("## Earlier step\n")
        assert "## Perf gate" in text

    def test_missing_artifact_becomes_an_error_row(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        assert (
            perf_gate.main(
                [str(tmp_path / "BENCH_gone.json"), "--baselines", str(baselines)]
            )
            == 1
        )
        text = summary.read_text()
        assert "⚠️ ERROR" in text and "BENCH_gone.json" in text

    def test_no_env_var_writes_nothing(self, tmp_path):
        fresh_path, baselines = self._setup(tmp_path, PATH_BASELINE)
        assert perf_gate.main([str(fresh_path), "--baselines", str(baselines)]) == 0
        assert not (tmp_path / "summary.md").exists()
