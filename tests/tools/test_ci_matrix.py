"""The CI knob matrix is generated, covering, and drift-proof.

Acceptance for the CI satellite: ``tools/ci_matrix.py`` owns the
``--expect-consistent`` matrix as a declarative knob registry — the
workflow's generated block is a pairwise covering array plus full-cartesian
islands for the high-risk knob pairs, ``--check`` fails on any hand-edit,
and adding a knob value to the registry is the only move needed to extend
the matrix.
"""

import importlib.util
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "ci_matrix", REPO_ROOT / "tools" / "ci_matrix.py"
)
ci_matrix = importlib.util.module_from_spec(spec)
sys.modules["ci_matrix"] = ci_matrix
spec.loader.exec_module(ci_matrix)

WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"


class TestCoverage:
    def test_every_knob_pair_is_covered(self):
        rows = ci_matrix.matrix_rows()
        index = {knob.name: i for i, knob in enumerate(ci_matrix.KNOBS)}
        covered = set()
        for row in rows:
            for a, va in row.items():
                for b, vb in row.items():
                    if index[a] < index[b]:
                        covered.add(ci_matrix._pair(index[a], va, index[b], vb))
        assert covered >= ci_matrix.all_pairs(ci_matrix.KNOBS)

    def test_high_risk_pairs_get_the_full_cartesian_product(self):
        rows = ci_matrix.matrix_rows()
        by_name = {knob.name: knob for knob in ci_matrix.KNOBS}
        for a_name, b_name in ci_matrix.HIGH_RISK_PAIRS:
            for va in by_name[a_name].values:
                for vb in by_name[b_name].values:
                    assert any(
                        row[a_name] == va and row[b_name] == vb for row in rows
                    ), f"island missing: {a_name}={va}, {b_name}={vb}"

    def test_rows_are_far_fewer_than_the_cartesian_product(self):
        cartesian = 1
        for knob in ci_matrix.KNOBS:
            cartesian *= len(knob.values)
        assert len(ci_matrix.matrix_rows()) < cartesian / 4

    def test_generation_is_deterministic(self):
        assert ci_matrix.render_block() == ci_matrix.render_block()
        assert ci_matrix.matrix_rows() == ci_matrix.matrix_rows()


class TestCommands:
    def test_every_row_asserts_consistency(self):
        for row in ci_matrix.matrix_rows():
            command = ci_matrix.row_command(row)
            assert command.startswith("python -m repro.explore ")
            assert command.endswith(" --expect-consistent")

    def test_ud_rows_fuzz_with_nonzero_drop_and_duplicate_rates(self):
        rows = ci_matrix.matrix_rows()
        ud_rows = [r for r in rows if r["transport"] == "ud"]
        assert ud_rows, "the matrix must exercise the UD service level"
        for row in ud_rows:
            command = ci_matrix.row_command(row)
            assert "--strategy fuzz" in command
            assert "--drop-rate 0.25" in command
            assert "--duplicate-rate 0.1" in command

    def test_rc_rows_search_systematically(self):
        for row in ci_matrix.matrix_rows():
            if row["transport"] == "rc":
                command = ci_matrix.row_command(row)
                assert "--strategy systematic" in command
                assert "--drop-rate" not in command


class TestDrift:
    def test_committed_workflow_matches_the_registry(self):
        assert ci_matrix.main(["--check", "--workflow", str(WORKFLOW)]) == 0

    def test_hand_edited_block_fails_the_check(self, tmp_path, capsys):
        tampered = tmp_path / "ci.yml"
        shutil.copy(WORKFLOW, tampered)
        text = tampered.read_text()
        target = "--transport ud"
        assert target in text
        tampered.write_text(text.replace(target, "--transport rc", 1))
        assert ci_matrix.main(["--check", "--workflow", str(tampered)]) == 1
        out = capsys.readouterr().out
        assert "drifted" in out
        assert "--write" in out

    def test_write_repairs_a_tampered_block(self, tmp_path):
        tampered = tmp_path / "ci.yml"
        shutil.copy(WORKFLOW, tampered)
        tampered.write_text(
            tampered.read_text().replace("--transport ud", "--transport rc", 1)
        )
        assert ci_matrix.main(["--write", "--workflow", str(tampered)]) == 0
        assert ci_matrix.main(["--check", "--workflow", str(tampered)]) == 0
        assert tampered.read_text() == WORKFLOW.read_text()

    def test_missing_markers_is_a_loud_error(self, tmp_path):
        broken = tmp_path / "ci.yml"
        broken.write_text("jobs:\n  nothing: {}\n")
        with pytest.raises(SystemExit, match="markers"):
            ci_matrix.main(["--check", "--workflow", str(broken)])

    def test_registry_changes_surface_as_drift(self, monkeypatch, tmp_path):
        """Adding a knob value must invalidate the committed block."""
        copy = tmp_path / "ci.yml"
        shutil.copy(WORKFLOW, copy)
        knobs = list(ci_matrix.KNOBS)
        knobs[1] = ci_matrix.Knob(
            knobs[1].name, knobs[1].flag, knobs[1].values + ("bogus",)
        )
        monkeypatch.setattr(ci_matrix, "KNOBS", tuple(knobs))
        assert ci_matrix.main(["--check", "--workflow", str(copy)]) == 1
