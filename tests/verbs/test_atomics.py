"""One-sided atomics: NIC semantics, message decomposition, detector rules."""

import pytest

from repro.core.detector import DetectorConfig
from repro.detectors.postmortem import PostMortemDualClockDetector
from repro.memory.consistency import AccessKind
from repro.net.message import MessageKind
from repro.runtime.runtime import DSMRuntime, RuntimeConfig


def idle(api):
    yield from api.compute(0.0)


def build(world_size=3, **overrides):
    runtime = DSMRuntime(RuntimeConfig(world_size=world_size, **overrides))
    runtime.declare_scalar("x", owner=1, initial=0)
    return runtime


class TestAtomicSemantics:
    def test_fetch_add_returns_old_and_deposits_new(self):
        runtime = build()
        old_values = []

        def program(api):
            old_values.append((yield from api.fetch_add("x", 5)))
            old_values.append((yield from api.fetch_add("x", 2)))

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert old_values == [0, 5]
        assert result.shared_value("x") == 7

    def test_fetch_add_treats_uninitialized_cell_as_zero(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        runtime.declare_scalar("fresh", owner=1)  # no initial value

        def program(api):
            old = yield from api.fetch_add("fresh", 3)
            api.private.write("old", old)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        result = runtime.run()
        assert result.per_rank_private[0]["old"] == 0
        assert result.shared_value("fresh") == 3

    def test_compare_and_swap_success_and_failure(self):
        runtime = build()
        observed = []

        def program(api):
            observed.append((yield from api.compare_and_swap("x", 0, 10)))  # succeeds
            observed.append((yield from api.compare_and_swap("x", 0, 99)))  # fails
            observed.append((yield from api.compare_and_swap("x", 10, 20)))  # succeeds

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert observed == [0, 10, 10]
        assert result.shared_value("x") == 20

    def test_concurrent_fetch_adds_never_lose_updates(self):
        for seed in range(4):
            runtime = build(seed=seed, latency="uniform")

            def bump(api):
                for _ in range(3):
                    yield from api.fetch_add("x", 1)

            runtime.set_spmd_program(bump)
            result = runtime.run()
            assert result.shared_value("x") == 9, f"lost updates with seed {seed}"

    def test_consistency_checker_accepts_atomic_history(self):
        runtime = build(latency="uniform")

        def bump(api):
            for _ in range(2):
                yield from api.fetch_add("x", 1)

        runtime.set_spmd_program(bump)
        runtime.run()
        assert runtime.consistency_check() == []


class TestMessageDecomposition:
    def test_remote_atomic_is_request_plus_reply(self):
        runtime = build()

        def program(api):
            yield from api.fetch_add("x", 1)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        runtime.run()
        assert runtime.fabric.message_count(MessageKind.ATOMIC_REQUEST) == 1
        assert runtime.fabric.message_count(MessageKind.ATOMIC_REPLY) == 1

    def test_atomic_messages_count_as_data_traffic(self):
        runtime = build()

        def program(api):
            yield from api.compare_and_swap("x", 0, 1)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert result.fabric_stats.data_messages == 2

    def test_local_atomic_crosses_no_wire(self):
        runtime = build()

        def owner_program(api):
            yield from api.fetch_add("x", 1)  # rank 1 owns x

        runtime.set_program(1, owner_program)
        runtime.set_program(0, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert result.fabric_stats.data_messages == 0
        assert result.shared_value("x") == 1

    def test_atomic_serializes_under_the_nic_lock(self):
        runtime = build()
        lock_purposes = []

        def program(api):
            yield from api.fetch_add("x", 1)
            lock_purposes.extend(
                request.purpose for request in runtime.lock_tables[1].history()
            )

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        runtime.run()
        assert "fetch_add" in lock_purposes


class TestTraceRecords:
    def test_rmw_access_records_value_and_observed(self):
        runtime = build()

        def program(api):
            yield from api.fetch_add("x", 5)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        runtime.run()
        rmws = runtime.recorder.accesses(kind=AccessKind.RMW)
        assert len(rmws) == 1
        access = rmws[0]
        assert access.observed == 0 and access.value == 5
        assert access.operation == "fetch_add"
        assert access.kind.is_write and access.kind.is_read

    def test_summary_counts_atomics(self):
        runtime = build()

        def program(api):
            yield from api.fetch_add("x", 1)
            yield from api.compare_and_swap("x", 1, 2)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert result.trace_summary.atomics == 2
        assert result.trace_summary.rmws == 2


class TestDetectorRules:
    @staticmethod
    def two_rank_conflict(first, second, detector_config=None, seed=0):
        """Rank 0 and rank 2 each run one op against x (owned by rank 1)."""
        config = RuntimeConfig(
            world_size=3,
            seed=seed,
            detector=detector_config or DetectorConfig(),
        )
        runtime = DSMRuntime(config)
        runtime.declare_scalar("x", owner=1, initial=0)

        def make(op):
            def program(api):
                if op == "put":
                    yield from api.put("x", 77)
                elif op == "get":
                    yield from api.get("x")
                elif op == "fetch_add":
                    yield from api.fetch_add("x", 1)
                else:
                    yield from api.compare_and_swap("x", 0, 1)
            return program

        runtime.set_program(0, make(first))
        runtime.set_program(2, make(second))
        runtime.set_program(1, idle)
        return runtime.run()

    def test_unordered_rmw_pair_is_flagged_by_default(self):
        result = self.two_rank_conflict("fetch_add", "fetch_add")
        assert result.race_count >= 1
        kinds = {record.current_kind for record in result.race_records()}
        assert AccessKind.RMW in kinds

    def test_rmw_pairs_silenced_by_hardware_ordering_knob(self):
        result = self.two_rank_conflict(
            "fetch_add",
            "compare_and_swap",
            DetectorConfig(treat_rmw_pairs_as_ordered=True),
        )
        assert result.race_count == 0

    def test_rmw_vs_plain_write_flagged_even_with_knob(self):
        result = self.two_rank_conflict(
            "put", "fetch_add", DetectorConfig(treat_rmw_pairs_as_ordered=True)
        )
        assert result.race_count >= 1

    def test_rmw_vs_plain_read_flagged_even_with_knob(self):
        result = self.two_rank_conflict(
            "get", "fetch_add", DetectorConfig(treat_rmw_pairs_as_ordered=True)
        )
        assert result.race_count >= 1

    def test_barrier_orders_rmw_pairs(self):
        runtime = build()

        def first(api):
            yield from api.fetch_add("x", 1)
            yield from api.barrier()

        def second(api):
            yield from api.barrier()
            yield from api.fetch_add("x", 1)

        runtime.set_program(0, first)
        runtime.set_program(2, second)

        def owner(api):
            yield from api.barrier()

        runtime.set_program(1, owner)
        result = runtime.run()
        assert result.race_count == 0

    def test_same_origin_consecutive_rmws_never_race(self):
        runtime = build()

        def program(api):
            for _ in range(4):
                yield from api.fetch_add("x", 1)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert result.race_count == 0

    @pytest.mark.parametrize("knob", [False, True])
    def test_offline_replay_agrees_with_online_detection(self, knob):
        from repro.workloads import LockFreeCounterWorkload

        detector_config = DetectorConfig(treat_rmw_pairs_as_ordered=knob)
        workload = LockFreeCounterWorkload(
            world_size=3,
            increments=2,
            config=RuntimeConfig(detector=detector_config),
        )
        outcome = workload.run(seed=0)
        offline = PostMortemDualClockDetector(detector_config).detect(
            outcome.runtime.recorder.accesses(),
            world_size=3,
            syncs=outcome.runtime.recorder.syncs(),
        )
        assert (outcome.run.race_count > 0) == (offline.count() > 0)
        assert offline.flagged_symbols() == {
            record.symbol for record in outcome.run.race_records()
        }
