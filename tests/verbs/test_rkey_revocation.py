"""rkey lifecycle: deregistering a memory region with posted work in flight.

The ROADMAP open item: ``MemoryRegistry.deregister`` existed but nothing
exercised revocation mid-run.  These tests pin down the semantics:

* an rkey is validated **once, when servicing begins** — at the head of the
  queue-pair drain, before any lock or memory traffic;
* a request posted before the revocation but serviced after it fails with a
  REMOTE_ACCESS_ERROR completion and touches no memory (the verbs protection
  model: the initiator learns through the completion, never an exception at
  the post site);
* a request whose servicing already began when the key was revoked runs to
  completion — revocation does not abort in-flight DMA;
* re-registering the region mints a *fresh* rkey; the revoked key stays dead.
"""

import pytest

from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.verbs.memory_registration import RemoteAccessError
from repro.verbs.work import CompletionStatus


def make_runtime(**overrides):
    overrides.setdefault("latency", "constant")
    return DSMRuntime(RuntimeConfig(world_size=2, **overrides))


def revoke(runtime, symbol):
    """Owner-side revocation: drop the rkey covering ``symbol[0]``."""
    owner_context = runtime.verbs_contexts[
        runtime.directory.resolve(symbol, 0).rank
    ]
    address = runtime.directory.resolve(symbol, 0)
    rkey = owner_context.registry.rkey_covering(address)
    assert rkey is not None, "symbol was never registered"
    owner_context.registry.deregister(rkey)
    return rkey


class TestDeregisterBeforeServicing:
    def test_posted_put_fails_cleanly_when_key_revoked_before_drain(self):
        runtime = make_runtime()
        runtime.declare_scalar("x", owner=1, initial=0)

        def initiator(api):
            request = api.iput("x", 42)  # rkey resolved and queued here
            revoke(runtime, "x")        # owner revokes before the drain runs
            (completion,) = yield from api.wait(request, raise_on_error=False)
            api.private.write("status", completion.status.value)
            api.private.write("detail", completion.detail)

        def owner(api):
            yield from api.compute(0.0)

        runtime.set_program(0, initiator)
        runtime.set_program(1, owner)
        result = runtime.run()
        assert result.per_rank_private[0]["status"] == "remote-access-error"
        assert "not registered" in result.per_rank_private[0]["detail"]
        # The protection fault is pre-memory: the cell never changed and no
        # access was traced.
        assert result.shared_value("x") == 0
        assert runtime.recorder.accesses(symbol="x") == []

    def test_strict_wait_raises_remote_access_error(self):
        runtime = make_runtime()
        runtime.declare_scalar("x", owner=1, initial=0)

        def initiator(api):
            request = api.iget("x")
            revoke(runtime, "x")
            with pytest.raises(RemoteAccessError):
                yield from api.wait(request)

        def owner(api):
            yield from api.compute(0.0)

        runtime.set_program(0, initiator)
        runtime.set_program(1, owner)
        runtime.run()


class TestDeregisterMidFlight:
    def test_revocation_between_queued_requests_splits_the_queue(self):
        """Two puts on one queue pair; the owner revokes between their service
        windows.  The first (already serviced) sticks; the second fails."""
        runtime = make_runtime()
        runtime.declare_array("window", 2, owner=1, initial=0)

        def initiator(api):
            first = api.iput("window", 11, index=0)
            second = api.iput("window", 22, index=1)
            completions = yield from api.wait(first, second, raise_on_error=False)
            api.private.write(
                "statuses", [completion.status.value for completion in completions]
            )

        def owner(api):
            # Constant latency 1.0: the first put lands at t=1; revoke inside
            # (1, 2) so the second — queued behind it on the same QP — finds
            # the key dead at ITS validation point.
            yield from api.compute(1.5)
            revoke(runtime, "window")

        runtime.set_program(0, initiator)
        runtime.set_program(1, owner)
        result = runtime.run()
        assert result.per_rank_private[0]["statuses"] == [
            CompletionStatus.SUCCESS.value,
            CompletionStatus.REMOTE_ACCESS_ERROR.value,
        ]
        assert result.final_shared_values["window"] == [11, 0]

    def test_request_already_being_serviced_completes(self):
        """Validation happens once, at service start: revoking while the data
        message is in flight does not abort the operation (no DMA recall)."""
        runtime = make_runtime()
        runtime.declare_scalar("x", owner=1, initial=0)

        def initiator(api):
            request = api.iput("x", 7)
            completions = yield from api.wait(request, raise_on_error=False)
            api.private.write("status", completions[0].status.value)

        def owner(api):
            # The put is validated at t=0 (drain start) and lands at t=1;
            # revoking at t=0.5 is too late to stop it.
            yield from api.compute(0.5)
            revoke(runtime, "x")

        runtime.set_program(0, initiator)
        runtime.set_program(1, owner)
        result = runtime.run()
        assert result.per_rank_private[0]["status"] == "success"
        assert result.shared_value("x") == 7


class TestReRegistration:
    def test_fresh_rkey_after_revocation_and_old_key_stays_dead(self):
        runtime = make_runtime()
        runtime.declare_scalar("x", owner=1, initial=0)

        def initiator(api):
            first = api.iput("x", 1)
            yield from api.wait(first)
            old_rkey = revoke(runtime, "x")
            # Lazy re-registration on the next post mints a fresh key...
            second = api.iput("x", 2)
            assert second.rkey is not None and second.rkey != old_rkey
            yield from api.wait(second)
            # ...while a request pinning the revoked key still fails.
            address = api.address_of("x")
            stale = api.verbs.post_put(address, 3, rkey=old_rkey, symbol="x")
            completions = yield from api.wait(stale, raise_on_error=False)
            api.private.write("stale_status", completions[0].status.value)

        def owner(api):
            yield from api.compute(0.0)

        runtime.set_program(0, initiator)
        runtime.set_program(1, owner)
        result = runtime.run()
        assert result.per_rank_private[0]["stale_status"] == "remote-access-error"
        assert result.shared_value("x") == 2
