"""Same-origin async races: posted-but-unwaited work vs later own accesses.

The false-negative class the clock-transport refactor closes.  Before it, a
serviced one-sided work request ticked the *origin process's* clock, so a
posted-but-unwaited put and a later access by the same rank to the same cell
were always clock-ordered — the "forgot to wait before reusing the data" bug
was invisible by construction.  With post-time snapshots carried by every
work request, owner ticks on carried arrivals and synchronization deferred
to completion retirement, the matrix-clock detector must now flag these
races in **every** explored schedule (the paper's every-schedule guarantee),
while the properly-waited twins stay silent in every schedule (no false
positives) — under both clock transports.

Ground truth is established two ways: the schedule-space oracle (observable
behaviour diverges across explored interleavings of one seed) and, for the
put case, the final value flipping between the posted and the program-order
write.
"""

import pytest

from repro.explore import Explorer
from repro.explore.runner import MATRIX_CLOCK
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.trace.replay import TraceReplayer

WORLD = 3
BUDGET = 8


def idle(api):
    yield from api.compute(0.0)


def make_factory(op, waited, clock_transport="roundtrip"):
    """Rank 0 posts one operation on ``x`` and then touches ``x`` again.

    ``op`` picks the posted operation; the follow-up access conflicts with
    it (a write after a posted read, a read after a posted write/atomic).
    With ``waited=False`` nothing orders the NIC engine's effect against
    the follow-up — the outcome is schedule-dependent and must be flagged
    in every schedule; with ``waited=True`` retirement synchronizes the
    pair and nothing may be flagged in any schedule.
    """

    def factory(seed):
        runtime = DSMRuntime(
            RuntimeConfig(
                world_size=WORLD,
                seed=seed,
                latency="uniform",
                clock_transport=clock_transport,
            )
        )
        runtime.declare_scalar("x", owner=1, initial=0)

        def rank0(api):
            if op == "put":
                request = api.iput("x", 5)
            elif op == "get":
                request = api.iget("x")
            elif op == "fetch_add":
                request = api.ifetch_add("x", 1)
            else:
                request = api.icompare_and_swap("x", 0, 7)
            if waited:
                yield from api.wait(request)
            else:
                # Yield once so the queue-pair drain and this program race
                # for the wire: whether the posted operation or the
                # follow-up access transmits first is then a genuine
                # scheduling choice (a same-time tie the controller owns),
                # exactly the nondeterminism of a real NIC DMA engine
                # racing the CPU's next access.
                yield from api.compute(0.0)
            if op == "get":
                # Write-after-posted-read: the read observes 0 or 9
                # depending on which side the NIC serializes first.
                yield from api.put("x", 9)
            else:
                # Read-after-posted-write: the read observes the old or the
                # new value depending on arrival order.
                value = yield from api.get("x")
                api.private.write("seen", value)
            yield from api.wait_all()

        runtime.set_program(0, rank0)
        for rank in range(1, WORLD):
            runtime.set_program(rank, idle)
        return runtime

    return factory


OPS = ("put", "get", "fetch_add", "compare_and_swap")


class TestUnwaitedPostsRaceInEverySchedule:
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("clock_transport", ["roundtrip", "piggyback"])
    def test_flagged_in_100_percent_of_explored_schedules(self, op, clock_transport):
        result = Explorer(
            make_factory(op, waited=False, clock_transport=clock_transport), seed=0
        ).explore_fuzzed(BUDGET, quantum=2.0)
        # Ground truth: the schedule space genuinely diverges on x...
        assert "x" in result.ground_truth_racy_symbols(), (
            f"{op}: the unwaited scenario must be observably racy"
        )
        # ...and the matrix clock flags it in every single schedule.
        assert result.flag_fraction(MATRIX_CLOCK, "x") == 1.0, (
            f"{op}/{clock_transport}: matrix-clock missed the same-origin "
            f"async race in some schedule"
        )

    def test_posted_put_vs_own_blocking_put_flips_the_final_value(self):
        def factory(seed):
            runtime = DSMRuntime(
                RuntimeConfig(world_size=WORLD, seed=seed, latency="uniform")
            )
            runtime.declare_scalar("x", owner=1, initial=0)

            def rank0(api):
                api.iput("x", 5)
                yield from api.compute(0.0)
                yield from api.put("x", 6)
                yield from api.wait_all()

            runtime.set_program(0, rank0)
            for rank in range(1, WORLD):
                runtime.set_program(rank, idle)
            return runtime

        result = Explorer(factory, seed=0).explore_fuzzed(BUDGET, quantum=2.0)
        finals = {o.final_values["x"] for o in result.outcomes}
        assert finals == {(5,), (6,)}, (
            "the posted put and the blocking put must serialize both ways "
            f"across schedules (saw {finals})"
        )
        assert result.flag_fraction(MATRIX_CLOCK, "x") == 1.0


class TestWaitedPostsStaySilentInEverySchedule:
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("clock_transport", ["roundtrip", "piggyback"])
    def test_no_false_positives_once_waited(self, op, clock_transport):
        result = Explorer(
            make_factory(op, waited=True, clock_transport=clock_transport), seed=0
        ).explore_fuzzed(BUDGET, quantum=2.0)
        assert result.ground_truth_racy_symbols() == set()
        assert result.flagged_in_any(MATRIX_CLOCK) == set(), (
            f"{op}/{clock_transport}: waiting orders the pair; flagging it "
            f"is a false positive"
        )


class TestTransportsAgreeAndReplayMatches:
    @pytest.mark.parametrize("op", OPS)
    def test_verdicts_identical_across_transports(self, op):
        for seed in range(4):
            runs = {}
            for mode in ("roundtrip", "piggyback"):
                runtime = make_factory(op, waited=False, clock_transport=mode)(seed)
                result = runtime.run()
                runs[mode] = (runtime, result)
            roundtrip, piggyback = runs["roundtrip"][1], runs["piggyback"][1]
            assert roundtrip.race_count == piggyback.race_count
            assert {r.symbol for r in roundtrip.race_records()} == {
                r.symbol for r in piggyback.race_records()
            }
            assert (
                piggyback.fabric_stats.total_messages
                < roundtrip.fabric_stats.total_messages
            )

    @pytest.mark.parametrize("clock_transport", ["roundtrip", "piggyback"])
    def test_offline_replay_reproduces_the_async_race(self, clock_transport):
        for op in OPS:
            runtime = make_factory(op, waited=False, clock_transport=clock_transport)(0)
            result = runtime.run()
            replay = TraceReplayer(WORLD).replay(
                runtime.recorder.accesses(), syncs=runtime.recorder.syncs()
            )
            assert replay.race_count == result.race_count, (
                f"{op}: offline replay diverged from the online detector"
            )
            assert {r.address for r in replay.races} == {
                r.address for r in result.race_records()
            }
