"""Memory registration, rkey allocation and validation."""

import pytest

from repro.memory.address import GlobalAddress
from repro.memory.region import MemoryRegion
from repro.verbs.memory_registration import (
    MemoryRegistry,
    RemoteAccessError,
)


def region(owner=1, base=4, length=8, name="buf"):
    return MemoryRegion(name=name, owner=owner, base=base, length=length)


class TestRegistration:
    def test_register_allocates_rank_scoped_rkey(self):
        registry = MemoryRegistry(1)
        registration = registry.register(region())
        assert registration.rkey == 2 * MemoryRegistry._RANK_STRIDE
        assert registration.name == "buf"
        assert registration.owner == 1

    def test_registration_is_idempotent_per_region_name(self):
        registry = MemoryRegistry(1)
        first = registry.register(region())
        second = registry.register(region())
        assert first is second
        assert len(registry) == 1

    def test_distinct_regions_get_distinct_rkeys(self):
        registry = MemoryRegistry(1)
        a = registry.register(region(name="a", base=0, length=2))
        b = registry.register(region(name="b", base=2, length=2))
        assert a.rkey != b.rkey

    def test_rkeys_of_different_ranks_never_collide(self):
        k1 = MemoryRegistry(0).register(region(owner=0)).rkey
        k2 = MemoryRegistry(1).register(region(owner=1)).rkey
        assert k1 != k2

    def test_cannot_register_foreign_region(self):
        with pytest.raises(ValueError):
            MemoryRegistry(0).register(region(owner=3))


class TestValidation:
    def test_valid_rkey_and_address(self):
        registry = MemoryRegistry(1)
        registration = registry.register(region())
        found = registry.validate(registration.rkey, GlobalAddress(1, 5))
        assert found is registration

    def test_missing_rkey_is_rejected(self):
        registry = MemoryRegistry(1)
        registry.register(region())
        with pytest.raises(RemoteAccessError, match="no rkey"):
            registry.validate(None, GlobalAddress(1, 5))

    def test_unknown_rkey_is_rejected(self):
        registry = MemoryRegistry(1)
        with pytest.raises(RemoteAccessError, match="not registered"):
            registry.validate(0xDEAD, GlobalAddress(1, 5))

    def test_rkey_does_not_cover_address(self):
        registry = MemoryRegistry(1)
        registration = registry.register(region(base=4, length=8))
        with pytest.raises(RemoteAccessError, match="covers"):
            registry.validate(registration.rkey, GlobalAddress(1, 20))

    def test_deregistered_rkey_stops_validating(self):
        registry = MemoryRegistry(1)
        registration = registry.register(region())
        registry.deregister(registration.rkey)
        with pytest.raises(RemoteAccessError):
            registry.validate(registration.rkey, GlobalAddress(1, 5))
        # And the name is free for re-registration, with a fresh key.
        again = registry.register(region())
        assert again.rkey != registration.rkey

    def test_deregister_unknown_rkey_raises(self):
        with pytest.raises(KeyError):
            MemoryRegistry(1).deregister(123)


class TestLookup:
    def test_rkey_covering(self):
        registry = MemoryRegistry(1)
        registration = registry.register(region(base=4, length=8))
        assert registry.rkey_covering(GlobalAddress(1, 4)) == registration.rkey
        assert registry.rkey_covering(GlobalAddress(1, 11)) == registration.rkey
        assert registry.rkey_covering(GlobalAddress(1, 12)) is None

    def test_lookup(self):
        registry = MemoryRegistry(1)
        registration = registry.register(region())
        assert registry.lookup(registration.rkey) is registration
        assert registry.lookup(999) is None
