"""Queue pairs, contexts and the nonblocking ProcessAPI surface."""

import pytest

from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.sim.events import SimulationError
from repro.verbs.completion_queue import CompletionQueueOverflow
from repro.verbs.memory_registration import RemoteAccessError
from repro.verbs.queue_pair import SendQueueFull
from repro.verbs.work import CompletionStatus, Opcode


def build_runtime(world_size=3, **overrides):
    runtime = DSMRuntime(RuntimeConfig(world_size=world_size, **overrides))
    runtime.declare_array("data", 8, owner=1, initial=0)
    runtime.declare_scalar("counter", owner=1, initial=0)
    return runtime


def idle(api):
    yield from api.compute(0.0)


class TestPostingAndWaiting:
    def test_iput_returns_immediately_and_completes(self):
        runtime = build_runtime()
        seen = {}

        def writer(api):
            request = api.iput("data", 42, index=3)  # no yield: posting is immediate
            assert api.verbs.outstanding_count == 1
            completions = yield from api.wait(request)
            seen["wc"] = completions[0]
            assert api.verbs.outstanding_count == 0

        runtime.set_program(0, writer)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert result.shared_value("data", 3) == 42
        wc = seen["wc"]
        assert wc.ok and wc.opcode is Opcode.PUT
        assert wc.completed_at > wc.posted_at

    def test_iget_and_atomic_posts_carry_values(self):
        runtime = build_runtime()
        out = {}

        def program(api):
            yield from api.put("data", 7, index=0)
            got = api.iget("data", index=0)
            fadd = api.ifetch_add("counter", 5)
            (got_wc,) = yield from api.wait(got)
            (fadd_wc,) = yield from api.wait(fadd)
            cas = api.icompare_and_swap("counter", 5, 99)
            (cas_wc,) = yield from api.wait(cas)
            out.update(got=got_wc.value, fadd_old=fadd_wc.value, cas_old=cas_wc.value)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert out == {"got": 7, "fadd_old": 0, "cas_old": 5}
        assert result.shared_value("counter") == 99

    def test_wait_all_retires_everything_in_posting_order(self):
        runtime = build_runtime()
        orders = {}

        def program(api):
            requests = [api.iput("data", i, index=i) for i in range(4)]
            completions = yield from api.wait_all()
            orders["wr"] = [r.wr_id for r in requests]
            orders["wc"] = [wc.wr_id for wc in completions]

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert orders["wc"] == orders["wr"]
        assert result.final_shared_values["data"][:4] == [0, 1, 2, 3]

    def test_same_queue_pair_preserves_program_order(self):
        runtime = build_runtime()

        def program(api):
            api.iput("data", "first", index=0)
            api.iput("data", "second", index=0)
            yield from api.wait_all()

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        # In-order execution on one QP: the later post wins.
        assert result.shared_value("data", 0) == "second"

    def test_poll_completions_is_nonblocking(self):
        runtime = build_runtime()
        polled = {}

        def program(api):
            api.iput("data", 1, index=0)
            assert api.poll_completions() == []  # nothing serviced yet at t=0
            yield from api.compute(50.0)
            polled["late"] = api.poll_completions()

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        runtime.run()
        assert len(polled["late"]) == 1 and polled["late"][0].ok


class TestOverlap:
    def test_posted_puts_to_distinct_peers_overlap(self):
        """Two posted puts to different peers take about one put's time."""

        def run(blocking):
            runtime = DSMRuntime(RuntimeConfig(world_size=3, latency="constant"))
            runtime.declare_scalar("a", owner=1, initial=0)
            runtime.declare_scalar("b", owner=2, initial=0)
            elapsed = {}

            def origin(api):
                start = api.now
                if blocking:
                    yield from api.put("a", 1)
                    yield from api.put("b", 2)
                else:
                    api.iput("a", 1)
                    api.iput("b", 2)
                    yield from api.wait_all()
                elapsed["t"] = api.now - start

            runtime.set_program(0, origin)
            runtime.set_program(1, idle)
            runtime.set_program(2, idle)
            runtime.run()
            return elapsed["t"]

        assert run(blocking=False) < run(blocking=True)

    def test_computation_hides_posted_communication(self):
        runtime = build_runtime(latency="constant")
        times = {}

        def program(api):
            request = api.iput("data", 1, index=0)
            yield from api.compute(100.0)  # far longer than the put
            start = api.now
            yield from api.wait(request)
            times["wait"] = api.now - start

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        runtime.run()
        # The put completed during the compute: the wait is (nearly) free.
        assert times["wait"] == pytest.approx(0.0, abs=1e-9)


class TestErrors:
    def test_bad_rkey_yields_remote_access_error_completion(self):
        runtime = build_runtime()
        outcome = {}

        def program(api):
            address = api.address_of("data", 0)
            request = api.verbs.post_put(address, 1, rkey=0xBAD, symbol="data")
            (wc,) = yield from api.wait(request, raise_on_error=False)
            outcome["status"] = wc.status
            outcome["detail"] = wc.detail

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert outcome["status"] is CompletionStatus.REMOTE_ACCESS_ERROR
        assert "not registered" in outcome["detail"]
        # Protection fault: the memory was never touched.
        assert result.shared_value("data", 0) == 0

    def test_wait_raises_on_failed_completion_by_default(self):
        runtime = build_runtime()

        def program(api):
            address = api.address_of("data", 0)
            request = api.verbs.post_put(address, 1, rkey=0xBAD, symbol="data")
            yield from api.wait(request)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        with pytest.raises(SimulationError) as excinfo:
            runtime.run()
        assert isinstance(excinfo.value.__cause__, RemoteAccessError)

    def test_send_queue_full(self):
        runtime = build_runtime(verbs_max_send_wr=2)

        def program(api):
            api.iput("data", 1, index=0)
            api.iput("data", 2, index=1)
            with pytest.raises(SendQueueFull):
                api.iput("data", 3, index=2)
            # The rejected post must leave no phantom entry behind: only the
            # two accepted requests are outstanding, and wait_all() returns.
            assert api.verbs.outstanding_count == 2
            completions = yield from api.wait_all()
            assert len(completions) == 2

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        runtime.run()
        assert runtime.sim.all_finished()

    def test_waiting_on_duplicate_handles_returns_the_completion_twice(self):
        runtime = build_runtime()

        def program(api):
            request = api.iput("data", 1, index=0)
            first, second = yield from api.wait(request, request)
            assert first is second and first.ok

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        runtime.run()
        assert runtime.sim.all_finished()

    def test_failed_sibling_does_not_lose_successful_results(self):
        runtime = build_runtime()
        observed = {}

        def program(api):
            good = api.iput("data", 7, index=0)
            bad = api.verbs.post_put(api.address_of("data", 1), 8, rkey=0xBAD,
                                     symbol="data")
            before = len(api.operation_results())
            with pytest.raises(RemoteAccessError):
                yield from api.wait(good, bad)
            observed["recorded"] = len(api.operation_results()) - before

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert observed["recorded"] == 1  # the successful put was recorded
        assert result.shared_value("data", 0) == 7

    def test_bounded_completion_queue_overflows_when_not_retired(self):
        runtime = build_runtime(verbs_cq_capacity=1)

        def program(api):
            for index in range(3):
                api.iput("data", index, index=index)
            yield from api.compute(100.0)  # never retires: CQ fills up
            yield from api.wait_all()

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        with pytest.raises(SimulationError) as excinfo:
            runtime.run()
        assert isinstance(excinfo.value.__cause__, CompletionQueueOverflow)

    def test_waiting_twice_on_a_claimed_request_raises_instead_of_hanging(self):
        runtime = build_runtime()

        def program(api):
            request = api.iput("data", 1, index=0)
            yield from api.wait(request)
            with pytest.raises(ValueError, match="already claimed"):
                yield from api.wait(request)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        runtime.run()
        assert runtime.sim.all_finished()

    def test_runtime_without_verbs_rejects_posting(self):
        from repro.runtime.api import ProcessAPI
        from repro.memory.private import PrivateMemory

        runtime = build_runtime()
        api = ProcessAPI(
            0,
            runtime.sim,
            runtime.nics[0],
            runtime.directory,
            PrivateMemory(0),
        )
        with pytest.raises(RuntimeError, match="verbs"):
            api.iput("data", 1)


class TestTraceIntegration:
    def test_posted_operations_carry_posted_time(self):
        runtime = build_runtime()

        def program(api):
            api.iput("data", 1, index=0)
            yield from api.compute(10.0)
            yield from api.wait_all()

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        posted = [op for op in runtime.recorder.operations() if op.was_posted]
        assert len(posted) == 1
        op = posted[0]
        assert op.posted_time == 0.0
        assert op.start_time >= op.posted_time
        assert result.trace_summary.posted_operations == 1

    def test_detector_sees_verbs_traffic(self):
        """A posted put races with an unordered blocking put, same as blocking."""
        runtime = build_runtime()

        def writer_a(api):
            api.iput("data", "a", index=0)
            yield from api.wait_all()

        def writer_b(api):
            yield from api.put("data", "b", index=0)

        runtime.set_program(0, writer_a)
        runtime.set_program(2, writer_b)
        runtime.set_program(1, idle)
        result = runtime.run()
        assert result.race_count >= 1
        assert {record.symbol for record in result.race_records()} == {"data"}
