"""Unit tests for posted receive buffers, receive queues and SRQs."""

import pytest

from repro.memory.address import GlobalAddress
from repro.net.nic import ReceiverNotReady
from repro.verbs.receive_queue import (
    ReceiveQueue,
    ReceiveQueueFull,
    ReceiveWorkRequest,
    RecvQueueEmpty,
    SharedReceiveQueue,
)


def make_wr(wr_id, rank=1, offsets=(0,)):
    return ReceiveWorkRequest(
        wr_id=wr_id, addresses=tuple(GlobalAddress(rank, o) for o in offsets)
    )


class TestReceiveQueue:
    def test_fifo_matching_order(self):
        queue = ReceiveQueue(rank=1)
        first = queue.post(make_wr(1))
        second = queue.post(make_wr(2))
        assert queue.match(source=0) is first
        assert queue.match(source=0) is second
        assert queue.depth == 0

    def test_empty_queue_raises_recv_queue_empty(self):
        queue = ReceiveQueue(rank=1)
        with pytest.raises(RecvQueueEmpty):
            queue.match(source=0)

    def test_recv_queue_empty_is_the_nic_rnr_condition(self):
        # The sending NIC catches ReceiverNotReady; the verbs-level exception
        # must be a subclass or the RNR protocol would never trigger.
        assert issubclass(RecvQueueEmpty, ReceiverNotReady)

    def test_bounded_posting(self):
        queue = ReceiveQueue(rank=1, max_wr=2)
        queue.post(make_wr(1))
        queue.post(make_wr(2))
        with pytest.raises(ReceiveQueueFull):
            queue.post(make_wr(3))
        queue.match(source=0)  # freeing a slot re-enables posting
        queue.post(make_wr(4))

    def test_buffers_must_be_receiver_local(self):
        queue = ReceiveQueue(rank=1)
        with pytest.raises(ValueError, match="not.*local"):
            queue.post(make_wr(1, rank=2))

    def test_counters_and_capacity(self):
        queue = ReceiveQueue(rank=0)
        wr = queue.post(make_wr(1, rank=0, offsets=(0, 1, 2)))
        assert wr.capacity == 3
        assert queue.posted == 1 and queue.matched == 0
        queue.match(source=3)
        assert queue.matched == 1 and queue.matched_by == {3: 1}


class TestSharedReceiveQueue:
    def test_multiple_sources_drain_one_pool_in_fifo_order(self):
        srq = SharedReceiveQueue(rank=0, max_wr=8)
        first = srq.post(make_wr(1, rank=0))
        second = srq.post(make_wr(2, rank=0))
        # Whoever's send arrives first gets the oldest buffer.
        assert srq.match(source=2) is first
        assert srq.match(source=1) is second
        assert srq.matched_by == {1: 1, 2: 1}

    def test_attachment_bookkeeping(self):
        srq = SharedReceiveQueue(rank=0)
        srq.attach(3)
        srq.attach(1)
        srq.attach(3)
        assert srq.attached_peers == (1, 3)
