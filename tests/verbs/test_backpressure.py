"""The send backpressure policy: raise at the post site vs block for a slot.

`RuntimeConfig.verbs_backpressure` selects what a throttled post does when
`verbs_max_send_wr` requests are already outstanding on the queue pair:
``"raise"`` surfaces :class:`SendQueueFull` immediately (the PR-1
behaviour), ``"block"`` yields the posting process until a completion frees
a slot — so a saturating producer self-paces instead of crashing.
"""

import pytest

from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.sim.events import SimulationError
from repro.verbs.queue_pair import SendQueueFull

DEPTH = 2
POSTS = 12


def build_saturating_producer(mode: str, throttled: bool = True) -> DSMRuntime:
    """Rank 0 posts POSTS puts to rank 1 through a DEPTH-deep send queue."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            seed=0,
            verbs_max_send_wr=DEPTH,
            verbs_backpressure=mode,
        )
    )
    runtime.declare_array("x", POSTS, owner=1, initial=None)

    def producer(api):
        requests = []
        for i in range(POSTS):
            if throttled:
                request = yield from api.iput_throttled("x", i * 10, index=i)
            else:
                request = api.iput("x", i * 10, index=i)
            requests.append(request)
        yield from api.wait(*requests)
        api.private.write("posted", len(requests))

    def consumer(api):
        yield from api.compute(0.0)

    runtime.set_program(0, producer)
    runtime.set_program(1, consumer)
    return runtime


def test_raise_mode_surfaces_send_queue_full():
    runtime = build_saturating_producer("raise")
    with pytest.raises(SimulationError) as excinfo:
        runtime.run()
    assert isinstance(excinfo.value.__cause__, SendQueueFull)


def test_plain_posts_always_raise_even_in_block_mode():
    """iput (non-generator) cannot yield, so it keeps the raise contract."""
    runtime = build_saturating_producer("block", throttled=False)
    with pytest.raises(SimulationError) as excinfo:
        runtime.run()
    assert isinstance(excinfo.value.__cause__, SendQueueFull)


def test_block_mode_saturation_completes_with_stalls():
    runtime = build_saturating_producer("block")
    result = runtime.run()
    # Every put landed, in order, with no exception.
    assert result.final_shared_values["x"] == [i * 10 for i in range(POSTS)]
    assert runtime.private_memories[0].snapshot()["posted"] == POSTS
    queue_pair = runtime.verbs_contexts[0].queue_pair(1)
    # The producer genuinely saturated the queue: it parked at least once
    # per post beyond the queue depth, and never exceeded the depth.
    assert queue_pair.blocked_posts >= POSTS - DEPTH
    assert queue_pair.posted == POSTS
    assert queue_pair.outstanding == 0


def test_block_mode_is_deterministic():
    elapsed = set()
    for _ in range(2):
        runtime = build_saturating_producer("block")
        result = runtime.run()
        elapsed.add(
            (
                result.elapsed_sim_time,
                runtime.verbs_contexts[0].queue_pair(1).blocked_posts,
            )
        )
    assert len(elapsed) == 1


def test_throttled_send_blocks_too():
    """The two-sided path honours the same policy."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            seed=0,
            verbs_max_send_wr=DEPTH,
            verbs_backpressure="block",
            verbs_rnr_backoff=0.25,
        )
    )
    runtime.declare_array("inbox", POSTS, owner=1, initial=None)

    def sender(api):
        requests = []
        for i in range(POSTS):
            request = yield from api.isend_throttled(1, [i], symbol="inbox")
            requests.append(request)
        yield from api.wait(*requests)

    def receiver(api):
        for i in range(POSTS):
            api.irecv(0, "inbox", indices=[i])
        completions = yield from api.wait_recv(POSTS)
        api.private.write("received", [c.value[0] for c in completions])

    runtime.set_program(0, sender)
    runtime.set_program(1, receiver)
    runtime.run()
    assert runtime.private_memories[1].snapshot()["received"] == list(range(POSTS))
    assert runtime.verbs_contexts[0].queue_pair(1).blocked_posts > 0
