"""Unit tests for the ibv_comp_channel analogue (event channels)."""

import pytest

from repro.sim.engine import Simulator
from repro.verbs.completion_queue import CompletionQueue
from repro.verbs.event_channel import EventChannel
from repro.verbs.work import CompletionStatus, Opcode, WorkCompletion


def make_wc(wr_id):
    return WorkCompletion(
        wr_id=wr_id, opcode=Opcode.PUT, status=CompletionStatus.SUCCESS,
        origin=0, peer=1,
    )


def run_process(sim, generator):
    holder = {}

    def wrapper():
        holder["result"] = yield from generator
        return holder["result"]

    sim.process(wrapper())
    sim.run()
    return holder.get("result")


class TestArmAndNotify:
    def test_unattached_cq_cannot_arm(self):
        sim = Simulator()
        cq = CompletionQueue(sim)
        with pytest.raises(RuntimeError, match="not attached"):
            cq.arm()

    def test_armed_cq_notifies_on_push(self):
        sim = Simulator()
        channel = EventChannel(sim)
        cq = channel.attach(CompletionQueue(sim, name="cq-a"))
        cq.arm()
        assert channel.poll() is None
        cq.push(make_wc(1))
        assert channel.poll() is cq
        assert channel.events_delivered == 1

    def test_one_arm_buys_exactly_one_event(self):
        sim = Simulator()
        channel = EventChannel(sim)
        cq = channel.attach(CompletionQueue(sim))
        cq.arm()
        cq.push(make_wc(1))
        cq.push(make_wc(2))  # second push: disarmed, no second event
        assert channel.poll() is cq
        assert channel.poll() is None
        assert channel.events_delivered == 1

    def test_arming_a_nonempty_cq_fires_immediately(self):
        # The classic lost-wakeup guard: completions that arrived before the
        # arm must still produce an event.
        sim = Simulator()
        channel = EventChannel(sim)
        cq = channel.attach(CompletionQueue(sim))
        cq.push(make_wc(1))
        assert channel.poll() is None
        cq.arm()
        assert channel.poll() is cq

    def test_unarmed_pushes_never_notify(self):
        sim = Simulator()
        channel = EventChannel(sim)
        cq = channel.attach(CompletionQueue(sim))
        cq.push(make_wc(1))
        assert channel.poll() is None and channel.events_delivered == 0

    def test_cq_belongs_to_one_channel_for_life(self):
        sim = Simulator()
        first, second = EventChannel(sim, "a"), EventChannel(sim, "b")
        cq = first.attach(CompletionQueue(sim))
        first.attach(cq)  # re-attaching to the same channel is fine
        with pytest.raises(ValueError, match="already attached"):
            second.attach(cq)


class TestWaitAndSelect:
    def test_wait_blocks_until_an_armed_cq_fires(self):
        sim = Simulator()
        channel = EventChannel(sim)
        cq = channel.attach(CompletionQueue(sim))
        cq.arm()
        sim.call_after(5.0, lambda: cq.push(make_wc(1)))

        def waiter():
            fired = yield from channel.wait()
            return (fired, sim.now)

        fired, at = run_process(sim, waiter())
        assert fired is cq and at == 5.0

    def test_wait_selects_over_several_cqs_in_arrival_order(self):
        sim = Simulator()
        channel = EventChannel(sim)
        recv_cq = channel.attach(CompletionQueue(sim, name="recv"))
        send_cq = channel.attach(CompletionQueue(sim, name="send"))
        channel.arm_all()
        sim.call_after(2.0, lambda: send_cq.push(make_wc(1)))
        sim.call_after(4.0, lambda: recv_cq.push(make_wc(2)))

        def waiter():
            first = yield from channel.wait()
            second = yield from channel.wait()
            return [first, second]

        order = run_process(sim, waiter())
        assert order == [send_cq, recv_cq]

    def test_pending_events_are_delivered_before_blocking(self):
        sim = Simulator()
        channel = EventChannel(sim)
        cq = channel.attach(CompletionQueue(sim))
        cq.arm()
        cq.push(make_wc(1))

        def waiter():
            fired = yield from channel.wait()
            return fired

        assert run_process(sim, waiter()) is cq


class TestServeLoop:
    def test_serve_drains_handles_and_rearms(self):
        sim = Simulator()
        channel = EventChannel(sim)
        cq = channel.attach(CompletionQueue(sim))
        for delay, wr_id in ((1.0, 1), (2.0, 2), (3.0, 3)):
            sim.call_after(delay, lambda wr_id=wr_id: cq.push(make_wc(wr_id)))
        seen = []

        def server():
            handled = yield from channel.serve(
                lambda wc: seen.append(wc.wr_id), stop=lambda: len(seen) >= 3
            )
            return handled

        handled = run_process(sim, server())
        assert seen == [1, 2, 3] and handled == 3
        assert cq.depth == 0

    def test_serve_with_satisfied_stop_returns_without_waiting(self):
        sim = Simulator()
        channel = EventChannel(sim)
        channel.attach(CompletionQueue(sim))

        def server():
            handled = yield from channel.serve(lambda wc: None, stop=lambda: True)
            return handled

        assert run_process(sim, server()) == 0
