"""Completion-queue polling, blocking waits and overflow."""

import pytest

from repro.sim.engine import Simulator
from repro.verbs.completion_queue import CompletionQueue, CompletionQueueOverflow
from repro.verbs.work import CompletionStatus, Opcode, WorkCompletion


def completion(wr_id):
    return WorkCompletion(
        wr_id=wr_id,
        opcode=Opcode.PUT,
        status=CompletionStatus.SUCCESS,
        origin=0,
        peer=1,
    )


class TestPolling:
    def test_poll_empty_queue(self):
        cq = CompletionQueue(Simulator())
        assert cq.poll() == []

    def test_poll_returns_fifo_and_drains(self):
        cq = CompletionQueue(Simulator())
        for wr_id in range(3):
            cq.push(completion(wr_id))
        assert [wc.wr_id for wc in cq.poll()] == [0, 1, 2]
        assert cq.depth == 0

    def test_poll_max_entries(self):
        cq = CompletionQueue(Simulator())
        for wr_id in range(3):
            cq.push(completion(wr_id))
        assert [wc.wr_id for wc in cq.poll(max_entries=2)] == [0, 1]
        assert cq.depth == 1
        assert [wc.wr_id for wc in cq.poll(max_entries=5)] == [2]

    def test_total_pushed_keeps_counting(self):
        cq = CompletionQueue(Simulator())
        cq.push(completion(0))
        cq.poll()
        cq.push(completion(1))
        assert cq.total_pushed == 2


class TestWaiting:
    def test_wait_blocks_until_push(self):
        sim = Simulator()
        cq = CompletionQueue(sim)
        retired = []

        def waiter():
            got = yield from cq.wait(2)
            retired.extend(wc.wr_id for wc in got)

        def producer():
            yield sim.timeout(1.0)
            cq.push(completion(7))
            yield sim.timeout(1.0)
            cq.push(completion(8))

        sim.process(waiter())
        sim.process(producer())
        sim.run()
        assert retired == [7, 8]

    def test_wait_consumes_already_ready_completions(self):
        sim = Simulator()
        cq = CompletionQueue(sim)
        cq.push(completion(1))
        out = []

        def waiter():
            got = yield from cq.wait(1)
            out.extend(got)

        sim.process(waiter())
        sim.run()
        assert [wc.wr_id for wc in out] == [1]

    def test_wait_rejects_nonpositive_count(self):
        cq = CompletionQueue(Simulator())
        with pytest.raises(ValueError):
            list(cq.wait(0))


class TestCapacity:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CompletionQueue(Simulator(), capacity=0)

    def test_overflow_raises(self):
        cq = CompletionQueue(Simulator(), capacity=2)
        cq.push(completion(0))
        cq.push(completion(1))
        with pytest.raises(CompletionQueueOverflow):
            cq.push(completion(2))

    def test_retiring_makes_room(self):
        cq = CompletionQueue(Simulator(), capacity=1)
        cq.push(completion(0))
        cq.poll()
        cq.push(completion(1))  # no overflow after retirement
        assert cq.depth == 1
