"""SRQ low-watermark limit events (the IBV_EVENT_SRQ_LIMIT_REACHED analogue).

Arming a limit makes the SRQ fire exactly one asynchronous event when a
consumed receive drops the pool strictly below the threshold, then disarm
until re-armed — the hook real servers use to replenish receives in bulk
instead of once per completion.  The RPC echo workload exercises the full
pattern end to end in its ``srq_replenish="bulk"`` mode.
"""

import pytest

from repro.verbs.receive_queue import SharedReceiveQueue
from repro.workloads.rpc_echo import RPCEchoWorkload


def test_limit_fires_once_below_threshold_then_disarms():
    srq = SharedReceiveQueue(0, max_wr=8)
    fired = []
    srq.set_limit_listener(fired.append)

    class _WR:
        def __init__(self, wr_id):
            self.wr_id = wr_id
            self.addresses = ()

    for wr_id in range(4):
        srq._pending.append(_WR(wr_id))  # bypass address checks: unit scope
    srq.arm_limit(3)
    srq.match(1)  # depth 3: not strictly below the limit yet
    assert fired == [] and srq.limit == 3
    srq.match(1)  # depth 2 < 3: fires and disarms
    assert fired == [2] and srq.limit == 0 and srq.limit_events_fired == 1
    srq.match(1)  # disarmed: silent
    assert fired == [2]
    srq.arm_limit(2)
    srq.match(1)  # depth 0 < 2: fires again after re-arm
    assert fired == [2, 0] and srq.limit_events_fired == 2


def test_arm_limit_validates_threshold():
    srq = SharedReceiveQueue(0, max_wr=4)
    with pytest.raises(ValueError):
        srq.arm_limit(0)
    with pytest.raises(ValueError):
        srq.arm_limit(5)


def test_rpc_echo_bulk_replenish_end_to_end():
    workload = RPCEchoWorkload(
        num_clients=3, requests_per_client=3, srq_replenish="bulk"
    )
    runtime = workload.build(seed=0)
    runtime.run()
    # Every client got every echo back despite the lazier replenishing.
    for rank in range(1, workload.world_size):
        assert runtime.private_memories[rank].snapshot()["all_echoed"] is True
    srq = runtime.verbs_contexts[0].srq
    server_private = runtime.private_memories[0].snapshot()
    # The limit tripped and drove at least one bulk repost burst.
    assert srq.limit_events_fired >= 1
    assert server_private["bulk_replenishes"] >= 1
    assert runtime.verbs_contexts[0].srq_limit_events  # (time, depth) pairs
    assert server_private["served"] == workload.total_requests


def test_per_completion_mode_never_trips_the_limit():
    workload = RPCEchoWorkload(num_clients=3, requests_per_client=3)
    runtime = workload.build(seed=0)
    runtime.run()
    assert runtime.verbs_contexts[0].srq.limit_events_fired == 0
    for rank in range(1, workload.world_size):
        assert runtime.private_memories[rank].snapshot()["all_echoed"] is True


def test_bulk_mode_is_deterministic_per_seed():
    outcomes = set()
    for _ in range(2):
        runtime = RPCEchoWorkload(
            num_clients=3, requests_per_client=3, srq_replenish="bulk"
        ).build(seed=1)
        result = runtime.run()
        outcomes.add(
            (
                result.elapsed_sim_time,
                runtime.verbs_contexts[0].srq.limit_events_fired,
            )
        )
    assert len(outcomes) == 1
