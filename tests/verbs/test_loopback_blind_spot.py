"""The verbs loopback blind spot, pinned as executable documentation.

A posted operation on the poster's OWN public memory (origin == owner) keeps
the one remaining same-origin false-negative class: the same-origin fix of
the clock-transport refactor rests on the *owner's* reception tick being
knowledge the unwaited poster cannot have — but in loopback the poster IS
the owner, one clock identity, so there is no tick to be missing and the
pair often looks ordered.  Ground truth disagrees: whether the NIC engine's
loopback write or the program's next access goes first is a genuine
scheduling choice, observably flipping the value read.

Closing it needs a separate clock component for each rank's queue-pair
engine (``world_size + n`` entries) — the ROADMAP follow-up.  Until then
this test is ``xfail(strict=True)``: the day the detector flags loopback
races in every schedule, it XPASSes loudly and must be promoted to a real
acceptance test.
"""

import pytest

from repro.explore import Explorer
from repro.explore.runner import MATRIX_CLOCK
from repro.runtime.runtime import DSMRuntime, RuntimeConfig

BUDGET = 10


def make_factory(waited):
    """Rank 0 posts a put to its OWN cell, then reads it back.

    With ``waited=False`` nothing orders the NIC engine's loopback write
    against the read — the value observed is schedule-dependent; with
    ``waited=True`` retirement orders the pair.
    """

    def factory(seed):
        runtime = DSMRuntime(
            RuntimeConfig(world_size=2, seed=seed, latency="uniform")
        )
        runtime.declare_scalar("x", owner=0, initial=0)

        def rank0(api):
            request = api.iput("x", 5)  # origin == owner: verbs loopback
            if waited:
                yield from api.wait(request)
            else:
                # Yield once so the queue-pair drain and the program race
                # for the cell, exactly as in the remote-target twin test.
                yield from api.compute(0.0)
            value = yield from api.get("x")
            api.private.write("seen", value)
            yield from api.wait_all()

        def idle(api):
            yield from api.compute(0.0)

        runtime.set_program(0, rank0)
        runtime.set_program(1, idle)
        return runtime

    return factory


def explore(waited, detector_epochs="on"):
    return Explorer(
        make_factory(waited),
        seed=0,
        configure=lambda runtime: runtime.set_detector_epochs(detector_epochs),
    ).explore_fuzzed(BUDGET, quantum=2.0, tie_shuffle_probability=0.6)


def test_ground_truth_the_loopback_race_is_real():
    """The blind spot is not hypothetical: the unwaited loopback scenario
    observably diverges across explored schedules."""
    assert "x" in explore(waited=False).ground_truth_racy_symbols()


# Both epoch modes: the fast path is an exact shortcut, so it must neither
# open the blind spot wider (flag fraction rising would XPASS strictly and
# fail loudly) nor pretend to close it.
@pytest.mark.parametrize("detector_epochs", ["on", "off"])
@pytest.mark.xfail(
    strict=True,
    reason="verbs loopback blind spot (origin == owner): the poster and the "
    "owner share one clock identity, so the every-schedule guarantee does "
    "not yet cover posted operations on the poster's own memory — needs a "
    "clock component per queue-pair engine (ROADMAP follow-up); holds in "
    "both detector_epochs modes, the fast path cannot change it",
)
def test_unwaited_loopback_post_flagged_in_every_schedule(detector_epochs):
    result = explore(waited=False, detector_epochs=detector_epochs)
    assert "x" in result.ground_truth_racy_symbols()
    assert result.flag_fraction(MATRIX_CLOCK, "x") == 1.0


@pytest.mark.parametrize("detector_epochs", ["on", "off"])
def test_waited_loopback_post_is_silent_in_every_schedule(detector_epochs):
    """The sound half works today: a properly waited loopback post never
    races, in any schedule — whatever closes the blind spot must keep this
    at zero false positives."""
    result = explore(waited=True, detector_epochs=detector_epochs)
    assert "x" not in result.ground_truth_racy_symbols()
    assert result.flag_fraction(MATRIX_CLOCK, "x") == 0.0
