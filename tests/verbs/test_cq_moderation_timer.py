"""(cq_count, cq_usec) CQ moderation: flush triggers and CQE coalescing.

The timer protocol's contracts:

* **Validation** — the knob is a positive-count / positive-usec pair.
* **Count bound** — the batch flushes as ONE CQE event the moment the
  count trips, with the armed timer logically cancelled.
* **Timer bound** — a batch smaller than the count flushes when the armed
  timer expires, bounding the added retirement latency by ``cq_usec``.
* **Capacity pressure** — a bounded CQ flushes early instead of
  overflowing at the eventual timer.
* **Coalescing across drains** — unlike per-drain-burst ``cq_moderation``,
  the timer coalesces completions from separate drains, so ``cq.events``
  drops below ``total_pushed`` even for one-at-a-time posting.
* **Semantics unchanged** — verdicts, final values and delivered payloads
  match an unmoderated run exactly.
"""

import pytest

from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.verbs.completion_queue import validate_cq_moderation_timer


class TestValidation:
    def test_none_disables(self):
        assert validate_cq_moderation_timer(None) is None

    def test_pair_normalizes(self):
        assert validate_cq_moderation_timer((4, 2)) == (4, 2.0)
        assert validate_cq_moderation_timer([1, 0.5]) == (1, 0.5)

    @pytest.mark.parametrize(
        "bad",
        [42, "4,2.0", (0, 1.0), (-1, 1.0), (True, 1.0), (4, 0.0), (4, -2.0), (4,)],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_cq_moderation_timer(bad)


def burst_runtime(timer, count=8, cq_capacity=None, think=0.0):
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=2,
            cq_moderation_timer=timer,
            verbs_cq_capacity=cq_capacity,
        )
    )
    runtime.declare_array("cells", count, owner=1, initial=0)

    def writer(api):
        for index in range(count):
            api.iput("cells", index + 1, index=index)
            if think:
                yield from api.compute(think)
        yield from api.wait_all()

    def idle(api):
        yield from api.compute(1.0)

    runtime.set_program(0, writer)
    runtime.set_program(1, idle)
    return runtime


class TestFlushTriggers:
    def test_count_bound_flushes_and_coalesces(self):
        runtime = burst_runtime((4, 50.0), count=8)
        result = runtime.run()
        moderator = runtime.verbs_contexts[0].cq_moderator
        assert moderator.flushes["count"] >= 1
        assert moderator.pending == 0, "nothing may be stranded at end of run"
        cq = runtime.verbs_contexts[0].cq
        assert cq.events < cq.total_pushed, (
            "timer moderation must coalesce CQEs below one-per-completion"
        )
        assert result.final_shared_values["cells"] == list(range(1, 9))

    def test_timer_bound_flushes_small_batches(self):
        # Count bound unreachably high; only the 2.0-usec timer can flush.
        runtime = burst_runtime((64, 2.0), count=6, think=1.0)
        runtime.run()
        moderator = runtime.verbs_contexts[0].cq_moderator
        assert moderator.flushes["timer"] >= 1
        assert moderator.flushes["count"] == 0
        assert moderator.pending == 0

    def test_capacity_pressure_flushes_before_overflow(self):
        runtime = burst_runtime((64, 500.0), count=8, cq_capacity=3)
        result = runtime.run()
        moderator = runtime.verbs_contexts[0].cq_moderator
        assert moderator.flushes["capacity"] >= 1
        assert result.final_shared_values["cells"] == list(range(1, 9))

    def test_flush_counter_metric_booked_lazily(self):
        moderated = burst_runtime((4, 50.0), count=8).run()
        assert any("cq_timer_flushes" in key for key in moderated.metrics)
        plain = burst_runtime(None, count=8).run()
        assert not any("cq_timer" in key for key in plain.metrics)


class TestSemanticsUnchanged:
    def test_verdicts_and_values_match_unmoderated_run(self):
        from repro.workloads.rpc_echo import RPCEchoWorkload

        def build(timer):
            return RPCEchoWorkload(
                num_clients=2,
                requests_per_client=2,
                racy_buffer_reuse=True,
                config=RuntimeConfig(cq_moderation_timer=timer),
            ).run(seed=0)

        plain, moderated = build(None), build((3, 2.0))
        digest = lambda run: sorted(
            (r.address.rank, r.address.offset, r.current_rank, r.previous_rank)
            for r in run.race_records()
        )
        assert digest(moderated.run) == digest(plain.run)
        assert moderated.run.race_count > 0
        assert (
            moderated.run.final_shared_values == plain.run.final_shared_values
        )

    def test_timer_takes_precedence_over_burst_moderation(self):
        runtime = burst_runtime((4, 50.0), count=8)
        runtime.set_cq_moderation(True)
        runtime.run()
        moderator = runtime.verbs_contexts[0].cq_moderator
        assert moderator is not None
        assert sum(moderator.flushes.values()) >= 1, (
            "with both knobs on, completions must route through the timer"
        )

    def test_timer_wait_span_recorded_under_tracing(self):
        runtime = burst_runtime((64, 2.0), count=6, think=1.0)
        runtime.sim.obs.configure(trace_spans=True)
        runtime.run()
        waits = [
            event
            for event in runtime.sim.obs.spans.events()
            if event.get("name") == "timer_wait"
        ]
        assert waits, "flushed batches must render timer_wait spans"

    def test_set_after_run_rejected(self):
        runtime = burst_runtime((4, 2.0), count=2)
        runtime.run()
        with pytest.raises(RuntimeError, match="before run"):
            runtime.set_cq_moderation_timer(None)
        with pytest.raises(RuntimeError, match="before run"):
            runtime.set_flow_control("credit")
        with pytest.raises(RuntimeError, match="before run"):
            runtime.set_clock_wire_resync("adaptive")
