"""Event-channel fairness: several server processes share one channel.

`EventChannel.wait` wakes waiters in arrival order, so a pool of worker
processes blocked on one channel should drain a request stream roughly
round-robin — and above all, no waiter may starve.  The stress test spawns
several worker processes on the server rank, all waiting on one channel fed
by an SRQ's receive CQ, and asserts every worker handles at least one
completion *in every fuzzed schedule* — fairness must be a property of the
wakeup discipline, not of one lucky interleaving.
"""

import pytest

from repro.explore import PassthroughStrategy, ScheduleController, ScheduleFuzzer
from repro.runtime.runtime import DSMRuntime, RuntimeConfig

NUM_WORKERS = 3
NUM_CLIENTS = 3
REQUESTS_PER_CLIENT = 4


def build_shared_channel_server(seed: int) -> DSMRuntime:
    """Rank 0 runs a worker pool on one event channel; other ranks send."""
    runtime = DSMRuntime(
        RuntimeConfig(
            world_size=NUM_CLIENTS + 1,
            seed=seed,
            latency="uniform",
            verbs_rnr_backoff=0.25,
        )
    )
    total = NUM_CLIENTS * REQUESTS_PER_CLIENT
    slots = NUM_CLIENTS + 1
    runtime.declare_array("slots", slots, owner=0, initial=0)

    def server(api):
        api.create_srq()
        for slot in range(slots):
            api.post_srq_recv("slots", indices=[slot])
        channel = api.verbs.create_event_channel()
        channel.attach(api.verbs.recv_cq)
        counts = [0] * NUM_WORKERS
        progress = {"handled": 0}
        all_done = runtime.sim.event(name="all-requests-handled")

        def worker(wid):
            api.verbs.recv_cq.arm()
            while progress["handled"] < total:
                cq = yield from channel.wait()
                for completion in cq.poll():
                    counts[wid] += 1
                    progress["handled"] += 1
                    api.verbs.post_srq_recv(completion.addresses, symbol="slots")
                cq.arm()
                if progress["handled"] >= total and not all_done.triggered:
                    all_done.succeed()

        for wid in range(NUM_WORKERS):
            runtime.sim.process(worker(wid), name=f"server-worker-{wid}")
        yield all_done
        api.private.write("counts", list(counts))

    def client(api):
        for i in range(REQUESTS_PER_CLIENT):
            request = api.isend(0, [api.rank * 100 + i], symbol="slots")
            yield from api.wait(request)
            yield from api.compute(1.0)

    runtime.set_program(0, server)
    for rank in range(1, NUM_CLIENTS + 1):
        runtime.set_program(rank, client)
    return runtime


@pytest.mark.parametrize("schedule", range(4))
def test_no_worker_starves_across_fuzzed_schedules(schedule):
    runtime = build_shared_channel_server(seed=0)
    strategy = (
        PassthroughStrategy()
        if schedule == 0
        else ScheduleFuzzer(
            seed=schedule, reorder_probability=0.4, reorder_aggressiveness=2.0
        )
    )
    runtime.sim.install_controller(ScheduleController(strategy))
    runtime.run()
    counts = runtime.private_memories[0].snapshot()["counts"]
    assert sum(counts) == NUM_CLIENTS * REQUESTS_PER_CLIENT
    assert min(counts) >= 1, (
        f"a worker starved on one event channel under schedule {schedule}: {counts}"
    )


def test_wakeups_are_roughly_round_robin_on_spaced_traffic():
    """With requests spaced out, arrival-order wakeup spreads work evenly."""
    runtime = build_shared_channel_server(seed=0)
    runtime.run()
    counts = runtime.private_memories[0].snapshot()["counts"]
    assert max(counts) - min(counts) <= NUM_CLIENTS, counts
