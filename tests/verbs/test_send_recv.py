"""Two-sided SEND/RECV semantics: matching, SRQ, scatter/gather, RNR, errors."""

import pytest

from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.trace.replay import TraceReplayer
from repro.verbs.receive_queue import ReceiveQueueFull
from repro.verbs.work import CompletionError, CompletionStatus, Opcode


def make_runtime(world_size=2, **overrides):
    overrides.setdefault("latency", "constant")
    return DSMRuntime(RuntimeConfig(world_size=world_size, **overrides))


class TestBasicSendRecv:
    def test_payload_lands_in_posted_buffer(self):
        runtime = make_runtime()
        runtime.declare_array("inbox", 4, owner=1, initial=0)

        def sender(api):
            request = api.isend(1, [10, 20, 30], symbol="inbox")
            (completion,) = yield from api.wait(request)
            api.private.write("send_status", completion.status.value)

        def receiver(api):
            posted = api.irecv(0, "inbox", indices=range(3))
            (completion,) = yield from api.wait_recv(1)
            api.private.write("wr_id_matches", completion.wr_id == posted.wr_id)
            api.private.write("value", completion.value)
            api.private.write("peer", completion.peer)
            api.private.write("opcode", completion.opcode.value)
            api.private.write("addresses", len(completion.addresses))

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        result = runtime.run()
        assert result.final_shared_values["inbox"] == [10, 20, 30, 0]
        assert result.per_rank_private[0]["send_status"] == "success"
        private = result.per_rank_private[1]
        assert private["wr_id_matches"] and private["value"] == (10, 20, 30)
        assert private["peer"] == 0 and private["opcode"] == "recv"
        assert private["addresses"] == 3
        assert result.race_count == 0
        assert result.trace_summary.sends == 1
        assert runtime.consistency_check() == []

    def test_matching_is_fifo_per_queue_pair(self):
        runtime = make_runtime()
        runtime.declare_array("inbox", 2, owner=1, initial=0)

        def sender(api):
            first = api.isend(1, "first")
            second = api.isend(1, "second")
            yield from api.wait(first, second)

        def receiver(api):
            api.irecv(0, "inbox", index=0)
            api.irecv(0, "inbox", index=1)
            completions = yield from api.wait_recv(2)
            api.private.write("order", [c.value for c in completions])

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        result = runtime.run()
        # First posted buffer absorbs the first send, in posting order.
        assert result.final_shared_values["inbox"] == ["first", "second"]
        assert result.per_rank_private[1]["order"] == [("first",), ("second",)]

    def test_zero_length_send_is_pure_synchronization(self):
        runtime = make_runtime()
        runtime.declare_array("inbox", 1, owner=1, initial=99)

        def sender(api):
            request = api.verbs.post_send(1)  # empty payload
            yield from api.wait(request)

        def receiver(api):
            api.irecv(0, "inbox", index=0)
            (completion,) = yield from api.wait_recv(1)
            api.private.write("value", completion.value)

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        result = runtime.run()
        assert result.per_rank_private[1]["value"] == ()
        assert result.final_shared_values["inbox"] == [99]  # untouched

    def test_gathered_send_reads_local_cells_at_service_time(self):
        runtime = make_runtime()
        runtime.declare_array("outbox", 3, owner=0, initial=0)
        runtime.declare_array("inbox", 3, owner=1, initial=0)

        def sender(api):
            for index, value in enumerate((5, 6, 7)):
                yield from api.put("outbox", value, index=index)
            request = api.isend_gather(1, "outbox", indices=range(3))
            yield from api.wait(request)

        def receiver(api):
            api.irecv(0, "inbox", indices=range(3))
            (completion,) = yield from api.wait_recv(1)
            api.private.write("value", completion.value)

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        result = runtime.run()
        assert result.final_shared_values["inbox"] == [5, 6, 7]
        assert result.per_rank_private[1]["value"] == (5, 6, 7)

    def test_short_payload_leaves_buffer_tail_untouched(self):
        runtime = make_runtime()
        runtime.declare_array("inbox", 3, owner=1, initial=-1)

        def sender(api):
            yield from api.wait(api.isend(1, [42]))

        def receiver(api):
            api.irecv(0, "inbox", indices=range(3))
            yield from api.wait_recv(1)

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        result = runtime.run()
        assert result.final_shared_values["inbox"] == [42, -1, -1]


class TestSharedReceiveQueueEndToEnd:
    def test_sends_from_several_peers_drain_one_srq(self):
        runtime = make_runtime(world_size=3, latency="uniform")
        runtime.declare_array("slots", 2, owner=0, initial=0)

        def server(api):
            api.create_srq()
            api.post_srq_recv("slots", index=0)
            api.post_srq_recv("slots", index=1)
            completions = yield from api.wait_recv(2)
            api.private.write("sources", sorted(c.peer for c in completions))

        def client(api):
            yield from api.wait(api.isend(0, api.rank * 10, symbol="slots"))

        runtime.set_program(0, server)
        runtime.set_program(1, client)
        runtime.set_program(2, client)
        result = runtime.run()
        assert result.per_rank_private[0]["sources"] == [1, 2]
        assert sorted(result.final_shared_values["slots"]) == [10, 20]
        assert runtime.verbs_contexts[0].srq.matched == 2

    def test_post_recv_rejected_on_srq_backed_queue_pair(self):
        runtime = make_runtime()
        runtime.declare_array("slots", 1, owner=1, initial=0)

        def receiver(api):
            api.create_srq()
            with pytest.raises(ValueError, match="post_srq_recv"):
                api.irecv(0, "slots", index=0)
            yield from api.compute(0.0)

        def idle(api):
            yield from api.compute(0.0)

        runtime.set_program(0, idle)
        runtime.set_program(1, receiver)
        runtime.run()

    def test_one_srq_per_context(self):
        runtime = make_runtime()
        context = runtime.verbs_contexts[0]
        context.create_srq()
        with pytest.raises(RuntimeError, match="already has"):
            context.create_srq()


class TestRnrBehaviour:
    def test_finite_retry_budget_fails_with_rnr_status(self):
        runtime = make_runtime(verbs_rnr_retry_limit=2, verbs_rnr_backoff=0.5)
        runtime.declare_array("inbox", 1, owner=1, initial=0)

        def sender(api):
            request = api.isend(1, 5, symbol="inbox")
            (completion,) = yield from api.wait(request, raise_on_error=False)
            api.private.write("status", completion.status.value)

        def receiver(api):
            yield from api.compute(50.0)  # never posts a receive

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        result = runtime.run()
        assert result.per_rank_private[0]["status"] == "rnr-retry-exceeded"
        assert result.final_shared_values["inbox"] == [0]  # nothing landed

    def test_rnr_failure_raises_completion_error_when_waited_strictly(self):
        runtime = make_runtime(verbs_rnr_retry_limit=0)
        runtime.declare_array("inbox", 1, owner=1, initial=0)

        def sender(api):
            request = api.isend(1, 5)
            with pytest.raises(CompletionError, match="receiver not ready"):
                yield from api.wait(request)

        def receiver(api):
            yield from api.compute(50.0)

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        runtime.run()

    def test_infinite_retry_waits_for_a_late_receive(self):
        runtime = make_runtime(verbs_rnr_backoff=0.5)  # default: retry forever
        runtime.declare_array("inbox", 1, owner=1, initial=0)

        def sender(api):
            yield from api.wait(api.isend(1, 5, symbol="inbox"))
            api.private.write("done_at", api.now)

        def receiver(api):
            yield from api.compute(7.0)
            api.irecv(0, "inbox", index=0)
            (completion,) = yield from api.wait_recv(1)
            api.private.write("value", completion.value)

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        result = runtime.run()
        assert result.per_rank_private[1]["value"] == (5,)
        assert result.per_rank_private[0]["done_at"] >= 7.0
        send_op = runtime.recorder.operations("send")[0]
        assert send_op.data_messages > 1, "retransmissions must be charged as messages"


class TestLengthError:
    def test_overrun_consumes_buffer_and_fails_both_sides(self):
        runtime = make_runtime()
        runtime.declare_array("inbox", 1, owner=1, initial=-1)

        def sender(api):
            request = api.isend(1, [1, 2, 3], symbol="inbox")
            (completion,) = yield from api.wait(request, raise_on_error=False)
            api.private.write("status", completion.status.value)

        def receiver(api):
            api.irecv(0, "inbox", index=0)
            completions = yield from api.verbs.wait_recv(1)
            api.private.write("status", completions[0].status.value)

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        result = runtime.run()
        assert result.per_rank_private[0]["status"] == "length-error"
        assert result.per_rank_private[1]["status"] == "length-error"
        assert result.final_shared_values["inbox"] == [-1]  # untouched

    def test_api_wait_recv_raises_on_length_error(self):
        runtime = make_runtime()
        runtime.declare_array("inbox", 1, owner=1, initial=0)

        def sender(api):
            yield from api.wait(api.isend(1, [1, 2]), raise_on_error=False)

        def receiver(api):
            api.irecv(0, "inbox", index=0)
            with pytest.raises(CompletionError, match="overruns"):
                yield from api.wait_recv(1)

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        runtime.run()

    def test_wait_recv_error_carries_the_successful_siblings(self):
        """One bad-length peer must not cost the server the good payloads:
        the already-retired completions ride on the exception."""
        runtime = make_runtime(world_size=3)
        runtime.declare_array("inbox", 3, owner=2, initial=0)

        def good_sender(api):
            yield from api.wait(api.isend(2, [7], symbol="inbox"))

        def bad_sender(api):
            yield from api.compute(5.0)  # arrive second, deterministically
            yield from api.wait(
                api.isend(2, [1, 2, 3], symbol="inbox"), raise_on_error=False
            )

        def receiver(api):
            api.irecv(0, "inbox", index=0)
            api.irecv(1, "inbox", index=1)
            try:
                yield from api.wait_recv(2)
            except CompletionError as error:
                api.private.write(
                    "recovered",
                    sorted(
                        (c.peer, c.status.value, c.value) for c in error.completions
                    ),
                )

        runtime.set_program(0, good_sender)
        runtime.set_program(1, bad_sender)
        runtime.set_program(2, receiver)
        result = runtime.run()
        assert result.per_rank_private[2]["recovered"] == [
            (0, "success", (7,)),
            (1, "length-error", None),
        ]


class TestBoundedReceiveCQ:
    def test_recv_cq_overflow_is_a_receiver_side_async_error(self):
        """A full receive CQ must not crash the sender's drain process: the
        payload lands, the sender succeeds, and the receiver records the
        lost completion as an async error (IBV_EVENT_CQ_ERR in miniature)."""
        runtime = make_runtime(verbs_cq_capacity=1)
        runtime.declare_array("inbox", 2, owner=1, initial=0)

        def sender(api):
            first = api.isend(1, [10], symbol="inbox")
            second = api.isend(1, [20], symbol="inbox")
            completions = yield from api.wait(first, second)
            api.private.write(
                "statuses", [completion.status.value for completion in completions]
            )

        def receiver(api):
            api.irecv(0, "inbox", index=0)
            api.irecv(0, "inbox", index=1)
            yield from api.compute(50.0)  # both land before anything retires
            retired = yield from api.wait_recv(1)
            api.private.write("retired", len(retired))
            api.private.write("errors", len(api.verbs.async_errors))

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        result = runtime.run()
        # Both sends succeeded and both payloads landed...
        assert result.per_rank_private[0]["statuses"] == ["success", "success"]
        assert result.final_shared_values["inbox"] == [10, 20]
        # ...but the second completion was lost at the receiver.
        assert result.per_rank_private[1]["retired"] == 1
        assert result.per_rank_private[1]["errors"] == 1


class TestApiValidation:
    def test_recv_buffer_must_be_local(self):
        runtime = make_runtime()
        runtime.declare_array("remote_cells", 2, owner=0, initial=0)

        def receiver(api):
            with pytest.raises(ValueError, match="receiver's own memory"):
                api.irecv(0, "remote_cells", index=0)  # owned by rank 0
            yield from api.compute(0.0)

        def idle(api):
            yield from api.compute(0.0)

        runtime.set_program(0, idle)
        runtime.set_program(1, receiver)
        runtime.run()

    def test_receive_queue_capacity_enforced(self):
        runtime = make_runtime(verbs_max_recv_wr=1)
        runtime.declare_array("inbox", 2, owner=1, initial=0)

        def receiver(api):
            api.irecv(0, "inbox", index=0)
            with pytest.raises(ReceiveQueueFull):
                api.irecv(0, "inbox", index=1)
            yield from api.compute(0.0)

        def idle(api):
            yield from api.compute(0.0)

        runtime.set_program(0, idle)
        runtime.set_program(1, receiver)
        runtime.run()


class TestMatchingHappensBefore:
    def _reuse_runtime(self, seed, reuse_early):
        runtime = DSMRuntime(
            RuntimeConfig(world_size=2, seed=seed, latency="uniform")
        )
        runtime.declare_array("inbox", 2, owner=1, initial=0)

        def sender(api):
            yield from api.wait(api.isend(1, [7, 8], symbol="inbox"))

        def receiver(api):
            api.irecv(0, "inbox", indices=range(2))
            if reuse_early:
                # The bug: scribble over the posted buffer mid-flight.
                yield from api.put("inbox", -1, index=0)
            (completion,) = yield from api.wait_recv(1)
            # Legal use: read the landed cells only after the completion.
            value = yield from api.get("inbox", index=0)
            api.private.write("seen", (completion.value, value))

        runtime.set_program(0, sender)
        runtime.set_program(1, receiver)
        return runtime

    def test_completion_ordered_reads_never_race(self):
        for seed in range(4):
            runtime = self._reuse_runtime(seed, reuse_early=False)
            result = runtime.run()
            assert result.race_count == 0, f"false positive at seed {seed}"

    def test_buffer_reuse_mid_flight_always_races(self):
        for seed in range(4):
            runtime = self._reuse_runtime(seed, reuse_early=True)
            result = runtime.run()
            assert result.race_count > 0, f"false negative at seed {seed}"
            assert {r.symbol for r in result.race_records()} == {"inbox"}

    def test_replay_reproduces_send_recv_race_report(self):
        for reuse in (False, True):
            runtime = self._reuse_runtime(0, reuse_early=reuse)
            result = runtime.run()
            replay = TraceReplayer(2).replay(
                runtime.recorder.accesses(), syncs=runtime.recorder.syncs()
            )
            assert replay.race_count == result.race_count
            assert {r.address for r in replay.races} == {
                r.address for r in result.race_records()
            }

    def test_reposted_buffer_absorbs_unsynchronized_senders_silently(self):
        # Two clients send into the same reposted slot; the repost is the
        # permission point, so no race despite the clients never syncing.
        runtime = make_runtime(world_size=3, latency="uniform")
        runtime.declare_array("slot", 1, owner=0, initial=0)

        def server(api):
            api.create_srq()
            api.post_srq_recv("slot", index=0)
            (first,) = yield from api.wait_recv(1)
            api.verbs.post_srq_recv(first.addresses, symbol="slot")
            (second,) = yield from api.wait_recv(1)
            api.private.write("order", [first.peer, second.peer])

        def client(api):
            yield from api.wait(api.isend(0, api.rank, symbol="slot"))

        runtime.set_program(0, server)
        runtime.set_program(1, client)
        runtime.set_program(2, client)
        result = runtime.run()
        assert sorted(result.per_rank_private[0]["order"]) == [1, 2]
        assert result.race_count == 0
