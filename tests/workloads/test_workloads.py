"""Tests for the parameterized workloads and the labelled pattern corpus."""

import pytest

from repro.workloads import (
    MasterWorkerWorkload,
    OneSidedReductionWorkload,
    ProducerConsumerWorkload,
    RandomAccessWorkload,
    StencilWorkload,
    pattern_corpus,
)


class TestRandomAccessWorkload:
    def test_runs_and_counts_operations(self):
        workload = RandomAccessWorkload(world_size=4, operations_per_rank=6)
        outcome = workload.run(seed=0)
        summary = outcome.run.trace_summary
        assert summary.accesses >= 4 * 6
        assert summary.world_size == 4

    def test_hot_conflicts_produce_races(self):
        workload = RandomAccessWorkload(
            world_size=4, operations_per_rank=10, hotspot_fraction=0.8, write_fraction=0.8
        )
        assert workload.expected_racy
        assert workload.run(seed=1).detected_racy

    def test_cold_disjoint_traffic_is_clean(self):
        workload = RandomAccessWorkload(
            world_size=4, operations_per_rank=8, hotspot_fraction=0.0, write_fraction=0.5
        )
        assert not workload.expected_racy
        outcome = workload.run(seed=2)
        assert not outcome.detected_racy

    def test_same_seed_reproduces_the_trace(self):
        workload = RandomAccessWorkload(world_size=3, operations_per_rank=5)
        first = workload.run(seed=7).run
        second = workload.run(seed=7).run
        assert first.trace_summary.as_dict() == second.trace_summary.as_dict()
        assert first.race_count == second.race_count

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomAccessWorkload(world_size=0)
        with pytest.raises(ValueError):
            RandomAccessWorkload(hotspot_fraction=1.5)


class TestMasterWorkerWorkload:
    def test_completes_without_aborting_despite_races(self):
        workload = MasterWorkerWorkload(world_size=4, tasks=6)
        outcome = workload.run(seed=0)
        assert outcome.detected_racy
        # Every task result was produced at least once.
        results = outcome.run.final_shared_values["results"]
        assert all(value is not None for value in results)

    def test_races_touch_the_coordination_cells(self):
        outcome = MasterWorkerWorkload(world_size=4, tasks=6).run(seed=0)
        assert "ticket" in outcome.detected_symbols() or "completed" in outcome.detected_symbols()

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            MasterWorkerWorkload(world_size=1)


class TestStencilWorkload:
    def test_barriers_make_it_race_free(self):
        outcome = StencilWorkload(world_size=4, iterations=3, use_barriers=True).run(seed=0)
        assert outcome.run.race_count == 0

    def test_removing_barriers_exposes_races(self):
        outcome = StencilWorkload(world_size=4, iterations=3, use_barriers=False).run(seed=0)
        assert outcome.run.race_count > 0
        assert any(symbol.startswith("halo") for symbol in outcome.detected_symbols())

    def test_block_values_are_computed(self):
        outcome = StencilWorkload(world_size=2, cells_per_rank=4, iterations=2).run(seed=0)
        for rank in range(2):
            block = outcome.run.per_rank_private[rank]["block"]
            assert len(block) == 4
            assert all(isinstance(value, float) for value in block)


class TestReductionWorkload:
    def test_synchronized_reduction_is_exact(self):
        workload = OneSidedReductionWorkload(world_size=5, synchronize=True)
        outcome = workload.run(seed=0)
        assert outcome.run.per_rank_private[0]["total"] == workload.expected_sum()
        assert outcome.run.race_count == 0

    def test_unsynchronized_reduction_races(self):
        workload = OneSidedReductionWorkload(world_size=5, synchronize=False)
        outcome = workload.run(seed=0)
        assert outcome.run.race_count > 0

    def test_reducer_rank_validated(self):
        with pytest.raises(ValueError):
            OneSidedReductionWorkload(world_size=3, reducer=3)


class TestProducerConsumerWorkload:
    def test_unsynchronized_handoff_races(self):
        outcome = ProducerConsumerWorkload(synchronized=False).run(seed=0)
        assert outcome.detected_racy

    def test_barrier_fixes_it_and_payload_arrives(self):
        workload = ProducerConsumerWorkload(synchronized=True, payload_cells=3)
        outcome = workload.run(seed=0)
        assert not outcome.detected_racy
        received = outcome.run.per_rank_private[1]["received"]
        assert received == [workload.payload(i) for i in range(3)]


class TestPatternCorpus:
    def test_corpus_has_both_labels(self):
        corpus = pattern_corpus()
        assert len(corpus) >= 12
        assert any(pattern.racy for pattern in corpus)
        assert any(not pattern.racy for pattern in corpus)

    def test_names_are_unique(self):
        names = [pattern.name for pattern in corpus] if (corpus := pattern_corpus()) else []
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("pattern", pattern_corpus(), ids=lambda p: p.name)
    def test_online_detector_matches_every_label(self, pattern):
        """The headline accuracy claim: the detector agrees with every corpus label."""
        result = pattern.run(seed=0)
        assert (result.race_count > 0) == pattern.racy, (
            f"{pattern.name}: label racy={pattern.racy} but detector reported "
            f"{result.race_count} signal(s)"
        )
