"""End-to-end checks of the two-sided workloads: RPC echo and plane stencil.

The acceptance bar for SEND/RECV mirrors the atomics': the RPC echo must run
end to end over SEND/RECV + SRQ with event-channel completions, and on the
*injected* receive-buffer reuse race — whose outcome genuinely varies across
interleavings — the dual-clock detector must reach recall 1.0 (every address
the execution-varying oracle labels racy is flagged in every execution).
"""

import pytest

from repro.detectors.ground_truth import SeedVaryingOracle
from repro.trace.replay import TraceReplayer
from repro.workloads import RPCEchoWorkload, SendRecvStencilWorkload


class TestRPCEchoCorrect:
    def test_all_requests_echoed_through_srq_and_event_channel(self):
        for seed in range(3):
            result = RPCEchoWorkload(num_clients=3, requests_per_client=2).run(seed)
            server = result.run.per_rank_private[0]
            assert server["served"] == 6 and server["echoed"] == 6
            # One receive + one send completion per request, all delivered
            # through the channel's serve loop.
            assert server["events_handled"] == 12
            for client in range(1, 4):
                assert result.run.per_rank_private[client]["all_echoed"]
            assert result.run.race_count == 0
            assert result.detection_matches_expectation

    def test_clean_protocol_replays_clean(self):
        result = RPCEchoWorkload(num_clients=2, requests_per_client=2).run(0)
        replay = TraceReplayer(3).replay(
            result.runtime.recorder.accesses(),
            syncs=result.runtime.recorder.syncs(),
        )
        assert replay.race_count == 0

    def test_requests_flow_through_the_srq(self):
        result = RPCEchoWorkload(num_clients=3, requests_per_client=2).run(0)
        srq = result.runtime.verbs_contexts[0].srq
        assert srq is not None
        assert srq.matched == 6
        assert set(srq.matched_by) == {1, 2, 3}
        assert srq.attached_peers == (1, 2, 3)
        # Every exchange really went over the wire as a SEND.
        assert result.run.trace_summary.sends == 12  # 6 requests + 6 echoes


class TestRPCEchoInjectedRace:
    def test_buffer_reuse_race_has_no_false_negatives(self):
        """Ground truth: the oracle-racy addresses are flagged at every seed.

        One client keeps the oracle sharp: with several clients the SRQ's
        FIFO slot assignment makes the *request* slots execution-varying too
        — benign, matching-mediated nondeterminism (the hardware-serialized
        analogue of the paper's master/worker ticket) that the detector
        deliberately orders through the repost permission point.  The reuse
        bug on the reply buffer is the injected, must-catch race: its
        ``reuse_delay`` straddles the reply's arrival, so the scribble lands
        before the payload in some schedules and after it in others, and the
        detector must flag the pair either way (retirement — not landing —
        is the receiver's synchronization point).
        """
        workload = RPCEchoWorkload(
            num_clients=1, requests_per_client=2, racy_buffer_reuse=True
        )
        seeds = (0, 1, 2, 3, 4, 5)
        oracle = SeedVaryingOracle(workload.factory(), seeds=seeds)
        truth = oracle.evaluate()
        assert truth.racy, "the injected buffer reuse must be observably racy"
        reply_address = workload.build(0).directory.resolve("reply1", 0)
        assert reply_address in truth.racy_addresses
        finals = {
            truth.final_values_by_seed[seed]["reply1"][0] for seed in seeds
        }
        assert len(finals) > 1, "the last write must genuinely vary with timing"
        for seed in seeds:
            runtime = workload.build(seed)
            runtime.run()
            flagged = {record.address for record in runtime.report.records()}
            missed = truth.racy_addresses - flagged
            assert not missed, (
                f"false negatives at seed {seed}: oracle-racy {missed} "
                f"not flagged (flagged: {flagged})"
            )

    def test_race_is_on_the_reply_buffers(self):
        result = RPCEchoWorkload(
            num_clients=2, requests_per_client=2, racy_buffer_reuse=True
        ).run(0)
        assert result.detected_racy
        assert result.detected_symbols() == {"reply1", "reply2"}
        assert result.detection_matches_expectation

    def test_racy_run_replays_identically(self):
        for seed in range(3):
            result = RPCEchoWorkload(
                num_clients=2, requests_per_client=2, racy_buffer_reuse=True
            ).run(seed)
            replay = TraceReplayer(3).replay(
                result.runtime.recorder.accesses(),
                syncs=result.runtime.recorder.syncs(),
            )
            assert replay.race_count == result.run.race_count
            assert {r.address for r in replay.races} == {
                r.address for r in result.run.race_records()
            }


class TestPlaneStencil:
    def test_transports_agree_numerically_and_stay_race_free(self):
        for seed in (0, 1):
            send = SendRecvStencilWorkload(transport="send").run(seed)
            puts = SendRecvStencilWorkload(transport="puts").run(seed)
            for rank in range(4):
                assert (
                    send.run.per_rank_private[rank]["tile"]
                    == puts.run.per_rank_private[rank]["tile"]
                )
            assert send.run.race_count == 0 and puts.run.race_count == 0

    def test_gathered_sends_use_one_message_per_plane(self):
        workload = SendRecvStencilWorkload(
            world_size=3, plane_width=5, iterations=2, transport="send"
        )
        result = workload.run(0)
        send_ops = result.runtime.recorder.operations("send")
        # 2 iterations x (2 edge ranks with 1 neighbour + 1 middle with 2).
        assert len(send_ops) == 8
        assert all(op.data_messages == 1 for op in send_ops)
        assert all(op.was_posted for op in send_ops)

    def test_stencil_trace_replays_clean(self):
        result = SendRecvStencilWorkload(transport="send").run(0)
        replay = TraceReplayer(4).replay(
            result.runtime.recorder.accesses(),
            syncs=result.runtime.recorder.syncs(),
        )
        assert replay.race_count == 0

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            SendRecvStencilWorkload(transport="pigeon")
