"""The three atomics/verbs workloads: overlap, lock-freedom, work stealing."""

import pytest

from repro.core.detector import DetectorConfig
from repro.detectors.ground_truth import SeedVaryingOracle
from repro.runtime.runtime import RuntimeConfig
from repro.workloads import (
    AtomicWorkStealingWorkload,
    LockFreeCounterWorkload,
    StencilWorkload,
    VerbsStencilWorkload,
)
from repro.workloads.work_stealing import task_value


class TestVerbsStencil:
    def test_matches_blocking_numerics_and_is_faster(self):
        params = dict(world_size=4, cells_per_rank=8, iterations=3, compute_cost=4.0)
        blocking = StencilWorkload(**params).run(0)
        overlapped = VerbsStencilWorkload(**params).run(0)
        for rank in range(4):
            assert (
                overlapped.run.per_rank_private[rank]["block"]
                == blocking.run.per_rank_private[rank]["block"]
            )
        assert overlapped.run.elapsed_sim_time < blocking.run.elapsed_sim_time

    def test_barriered_exchange_is_race_free(self):
        outcome = VerbsStencilWorkload(world_size=4, iterations=3).run(0)
        assert outcome.run.race_count == 0
        assert outcome.detection_matches_expectation

    def test_unsynchronized_exchange_races(self):
        outcome = VerbsStencilWorkload(
            world_size=4, iterations=4, use_barriers=False
        ).run(0)
        assert outcome.run.race_count > 0
        assert outcome.detected_symbols() <= outcome.expected_racy_symbols

    def test_halo_puts_are_posted(self):
        outcome = VerbsStencilWorkload(world_size=4, iterations=2).run(0)
        # Interior ranks post two puts per iteration, edge ranks one.
        assert outcome.run.trace_summary.posted_operations == 2 * (2 * 4 - 2)

    def test_interior_fraction_validation(self):
        with pytest.raises(ValueError):
            VerbsStencilWorkload(interior_fraction=1.5)


class TestLockFreeCounter:
    def test_atomic_counter_is_exact_on_every_seed(self):
        workload = LockFreeCounterWorkload(world_size=4, increments=3)
        for seed in range(5):
            outcome = workload.run(seed)
            assert outcome.run.shared_value("counter") == workload.expected_total

    def test_lossy_counter_loses_updates_on_some_seed(self):
        workload = LockFreeCounterWorkload(
            world_size=4, increments=3, use_atomics=False
        )
        finals = {workload.run(seed).run.shared_value("counter") for seed in range(5)}
        assert any(value < workload.expected_total for value in finals)

    def test_detector_flags_benign_rmw_races_by_default(self):
        outcome = LockFreeCounterWorkload(world_size=4, increments=3).run(0)
        assert outcome.detected_racy
        assert outcome.detected_symbols() == {"counter"}

    def test_hardware_ordering_knob_silences_pure_atomic_traffic(self):
        config = RuntimeConfig(detector=DetectorConfig(treat_rmw_pairs_as_ordered=True))
        outcome = LockFreeCounterWorkload(
            world_size=4, increments=3, config=config
        ).run(0)
        assert outcome.run.race_count == 0

    def test_ground_truth_sees_atomic_counter_as_outcome_deterministic(self):
        """The oracle's observable-divergence definition labels the atomic
        counter non-racy: final value and observed-value multiset never vary."""
        workload = LockFreeCounterWorkload(world_size=3, increments=2)
        truth = SeedVaryingOracle(workload.factory(), seeds=(0, 1, 2)).evaluate()
        assert not truth.racy

    def test_ground_truth_sees_lossy_counter_as_racy(self):
        workload = LockFreeCounterWorkload(
            world_size=3, increments=2, use_atomics=False
        )
        truth = SeedVaryingOracle(workload.factory(), seeds=(0, 1, 2)).evaluate()
        assert truth.is_racy_symbol("counter")


class TestAtomicWorkStealing:
    def test_every_task_executes_exactly_once_on_every_seed(self):
        workload = AtomicWorkStealingWorkload(
            world_size=4, tasks_per_rank=3, imbalance=2.0
        )
        expected = [task_value(task) for task in range(workload.total_tasks)]
        for seed in range(4):
            outcome = workload.run(seed)
            assert outcome.run.final_shared_values["results"] == expected
            assert outcome.run.shared_value("done") == workload.total_tasks
            executed = [
                task
                for rank in range(4)
                for task in outcome.run.per_rank_private[rank]["executed"]
            ]
            assert sorted(executed) == list(range(workload.total_tasks))

    def test_imbalance_induces_stealing(self):
        workload = AtomicWorkStealingWorkload(
            world_size=4, tasks_per_rank=3, imbalance=2.0
        )
        outcome = workload.run(0)
        stolen = [
            task
            for rank in range(4)
            for task in outcome.run.per_rank_private[rank]["executed"]
            if task // workload.tasks_per_rank != rank
        ]
        assert stolen, "with heavy imbalance some tasks must be stolen"

    def test_results_are_outcome_deterministic_for_the_oracle(self):
        workload = AtomicWorkStealingWorkload(
            world_size=3, tasks_per_rank=2, imbalance=2.0
        )
        truth = SeedVaryingOracle(workload.factory(), seeds=(0, 1, 2)).evaluate()
        assert not truth.is_racy_symbol("results")
        assert not truth.is_racy_symbol("done")

    def test_detector_flags_only_coordination_cells(self):
        workload = AtomicWorkStealingWorkload(
            world_size=4, tasks_per_rank=3, imbalance=2.0
        )
        outcome = workload.run(0)
        assert outcome.detected_racy
        assert outcome.detected_symbols() <= outcome.expected_racy_symbols

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AtomicWorkStealingWorkload(imbalance=-1.0)
