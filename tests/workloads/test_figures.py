"""Tests that every figure scenario reproduces the paper's claim exactly."""

import pytest

from repro.core.detector import DetectorConfig
from repro.net.message import MessageKind
from repro.workloads.figures import (
    FIGURE_EXPECTATIONS,
    figure2_put_get,
    figure3_lock_serialization,
    figure4_concurrent_reads,
    figure5a_concurrent_puts,
    figure5b_causal_chain,
    figure5c_four_process_chain,
)

ALL_FIGURES = [
    ("fig2", figure2_put_get),
    ("fig3", figure3_lock_serialization),
    ("fig4", figure4_concurrent_reads),
    ("fig5a", figure5a_concurrent_puts),
    ("fig5b", figure5b_causal_chain),
    ("fig5c", figure5c_four_process_chain),
]


class TestExpectations:
    @pytest.mark.parametrize("key,builder", ALL_FIGURES)
    def test_race_verdict_matches_the_paper(self, key, builder):
        runtime = builder()
        result = runtime.run()
        expectation = FIGURE_EXPECTATIONS[key]
        assert (result.race_count > 0) == expectation.race_expected, (
            f"{expectation.figure}: expected race={expectation.race_expected}, "
            f"got {result.race_count} signals\n{result.races.summary()}"
        )

    @pytest.mark.parametrize("key,builder", ALL_FIGURES)
    def test_scenarios_are_deterministic(self, key, builder):
        first = builder().run()
        second = builder().run()
        assert first.race_count == second.race_count
        assert first.fabric_stats.total_messages == second.fabric_stats.total_messages
        assert first.final_shared_values == second.final_shared_values


class TestFigure2:
    def test_put_one_message_get_two_messages(self):
        runtime = figure2_put_get()
        runtime.run()
        assert runtime.fabric.message_count(MessageKind.PUT_DATA) == 1
        assert runtime.fabric.message_count(MessageKind.GET_REQUEST) == 1
        assert runtime.fabric.message_count(MessageKind.GET_REPLY) == 1

    def test_value_written_is_read_back(self):
        runtime = figure2_put_get()
        result = runtime.run()
        assert result.shared_value("x") == 42
        assert result.per_rank_private[2]["observed"] == 42


class TestFigure3:
    def test_put_waits_for_get_lock(self):
        runtime = figure3_lock_serialization()
        result = runtime.run()
        # The lock table of the owner saw contention on the datum.
        assert runtime.lock_tables[1].contended_acquisitions >= 1
        # The reader got the pre-put value; the put landed afterwards.
        assert result.per_rank_private[2]["read"] == "initial"
        assert result.shared_value("d") == "from-P0"

    def test_accesses_remain_causally_unordered(self):
        result = figure3_lock_serialization().run()
        assert result.race_count >= 1


class TestFigure4:
    def test_both_readers_observe_initial_value(self):
        runtime = figure4_concurrent_reads()
        result = runtime.run()
        assert result.per_rank_private[0]["a"] == "A"
        assert result.per_rank_private[2]["a"] == "A"

    def test_no_race_is_signalled(self):
        assert figure4_concurrent_reads().run().race_count == 0

    def test_single_clock_ablation_would_flag_it(self):
        """The dual-clock design is what keeps Figure 4 silent (Section IV-D)."""
        from repro.detectors.single_clock import SingleClockDetector

        runtime = figure4_concurrent_reads()
        runtime.run()
        offline = SingleClockDetector().detect(runtime.recorder.accesses(), 3)
        assert offline.count() >= 1
        assert any(not finding.involves_write() for finding in offline.findings)


class TestFigure5a:
    def test_race_on_the_shared_datum(self):
        runtime = figure5a_concurrent_puts()
        result = runtime.run()
        assert result.race_count == 1
        record = result.race_records()[0]
        assert record.symbol == "a"
        assert {record.current_rank, record.previous_rank} == {0, 2}

    def test_clocks_are_incomparable_like_the_paper(self):
        """Paper caption: clocks 110 and 001 are incomparable."""
        from repro.core.comparator import concurrent

        runtime = figure5a_concurrent_puts()
        result = runtime.run()
        record = result.race_records()[0]
        assert concurrent(list(record.current_clock), list(record.previous_clock))


class TestFigure5b:
    def test_causal_chain_completes_and_stays_silent(self):
        runtime = figure5b_causal_chain()
        result = runtime.run()
        assert result.race_count == 0
        # The chain delivered its payloads end to end.
        assert result.per_rank_private[1]["a"] == "A0"
        final_a = result.shared_value("a")
        assert final_a[0] == "m3"


class TestFigure5c:
    def test_arrival_race_is_detected(self):
        runtime = figure5c_four_process_chain()
        result = runtime.run()
        assert result.race_count == 1
        record = result.race_records()[0]
        assert record.symbol == "a"
        assert record.current_rank == 2 and record.previous_rank == 0

    def test_without_owner_tick_the_race_on_a_is_missed(self):
        """Ablation: issuing-order happens-before cannot see the arrival race on ``a``.

        (The ablated detector still reports unrelated read-vs-write pairs on
        the relay cells, because without the owner's reception event the
        owner's own reads are no longer ordered after incoming writes; the
        point here is that the race the figure is about — the two puts to
        ``a`` — disappears from the report.)
        """
        config = DetectorConfig(write_effect_ticks_owner=False)
        runtime = figure5c_four_process_chain(detector=config)
        result = runtime.run()
        racy_symbols = {record.symbol for record in result.race_records()}
        assert "a" not in racy_symbols
