"""Critical-path analysis and what-if profiling: the exactness contract.

The analyzer is a pure post-processor over the span trace, so its guarantees
are checked at full strength:

* **Tiling** — on every corpus workload, the extracted path tiles
  ``[0, elapsed_sim_time]``: its length equals the simulated run time
  *exactly* (``fractions.Fraction``, not within-epsilon), and per-category
  attribution sums to the path length exactly.
* **What-if identity** — rescaling every category by 1.0 reproduces the run
  time exactly; shrinking any single category never predicts a slower run.
* **Zero footprint** — enabling tracing *and* running the analysis changes
  no observable of the run (verdicts, final values, metric snapshots,
  detection profiles), across the clock-transport × wire-format ×
  CQ-moderation × epochs knob matrix.
"""

import json
from fractions import Fraction

import pytest

from repro.net.clock_transport import CLOCK_TRANSPORT_MODES, CLOCK_WIRE_FORMATS
from repro.obs.critical_path import (
    CATEGORIES,
    CriticalPathAnalyzer,
    category_deltas,
)
from repro.obs.whatif import WhatIfEngine
from repro.runtime.runtime import RuntimeConfig
from repro.workloads.racy_patterns import pattern_corpus, rmw_pattern_corpus
from repro.workloads.stencil import StencilWorkload


def _corpus():
    return pattern_corpus() + rmw_pattern_corpus()


def _traced(pattern, seed=0):
    runtime = pattern.build(seed=seed)
    runtime.sim.obs.configure(trace_spans=True)
    result = runtime.run()
    return runtime, result


def _analyzer(runtime, result):
    return CriticalPathAnalyzer.from_tracer(
        runtime.sim.obs.spans, result.elapsed_sim_time
    )


class TestExactnessOnEveryCorpusWorkload:
    @pytest.mark.parametrize(
        "pattern", _corpus(), ids=[p.name for p in _corpus()]
    )
    def test_path_tiles_the_run_exactly(self, pattern):
        runtime, result = _traced(pattern)
        analyzer = _analyzer(runtime, result)
        path = analyzer.critical_path()
        elapsed = Fraction(result.elapsed_sim_time)
        # Path length is the run time, exactly — no epsilon.
        assert path.length_exact == elapsed, pattern.name
        # Attribution is a partition of the path.
        attribution = path.attribution_exact()
        assert sum(attribution.values(), Fraction(0)) == elapsed, pattern.name
        assert set(attribution) <= set(CATEGORIES), pattern.name
        # Segments tile [0, end] contiguously, oldest first.
        segments = path.segments
        assert segments[0].start == 0.0
        assert segments[-1].end == result.elapsed_sim_time
        for older, newer in zip(segments, segments[1:]):
            assert older.end == newer.start, pattern.name

    @pytest.mark.parametrize(
        "pattern", _corpus(), ids=[p.name for p in _corpus()]
    )
    def test_whatif_identity_and_monotone_shrink(self, pattern):
        runtime, result = _traced(pattern)
        engine = WhatIfEngine(_analyzer(runtime, result))
        elapsed = Fraction(result.elapsed_sim_time)
        # Factor 1.0 everywhere is an exact no-op.
        assert engine.predict_exact() == elapsed
        assert engine.predict_exact({c: 1.0 for c in CATEGORIES}) == elapsed
        # Shrinking any one category never predicts a slower run.
        for category in CATEGORIES:
            assert engine.predict_exact({category: Fraction(9, 10)}) <= elapsed


class TestAnalyzerSurface:
    def test_summary_shape_and_fraction_sum(self):
        runtime, result = _traced(_corpus()[0])
        summary = _analyzer(runtime, result).critical_path().summary()
        assert summary["schema_version"] == 1
        assert summary["end_time"] == result.elapsed_sim_time
        assert set(summary["categories"]) <= set(CATEGORIES)
        assert summary["dominant"] in CATEGORIES
        assert summary["segments"] > 0
        assert len(summary["top_segments"]) <= 5
        assert abs(sum(summary["fractions"].values()) - 1.0) < 1e-12

    def test_roundtrip_through_chrome_trace_is_lossless(self):
        runtime, result = _traced(_corpus()[0])
        direct = _analyzer(runtime, result).critical_path()
        trace = runtime.sim.obs.spans.to_chrome_trace()
        reloaded = CriticalPathAnalyzer.from_chrome_trace(
            trace, end_time=result.elapsed_sim_time
        ).critical_path()
        assert reloaded.length_exact == direct.length_exact
        assert reloaded.attribution_exact() == direct.attribution_exact()

    def test_chrome_trace_with_wrong_schema_version_is_rejected(self):
        runtime, result = _traced(_corpus()[0])
        trace = runtime.sim.obs.spans.to_chrome_trace()
        trace["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            CriticalPathAnalyzer.from_chrome_trace(trace)

    def test_whatif_rejects_unknown_categories(self):
        runtime, result = _traced(_corpus()[0])
        engine = WhatIfEngine(_analyzer(runtime, result))
        with pytest.raises(KeyError):
            engine.predict_exact({"warp_drive": 0.5})

    def test_whatif_curve_and_profile_are_ranked(self):
        runtime, result = _traced(_corpus()[0])
        path = _analyzer(runtime, result).critical_path()
        engine = WhatIfEngine(_analyzer(runtime, result))
        dominant = path.dominant_category()
        curve = engine.curve(dominant, factors=(0.5, 1.0, 1.5))
        assert [point["factor"] for point in curve] == [0.5, 1.0, 1.5]
        # Predictions are nondecreasing in the factor; 1.0 is the run time.
        predictions = [point["predicted_sim_time"] for point in curve]
        assert predictions == sorted(predictions)
        assert predictions[1] == result.elapsed_sim_time
        profile = engine.profile(factor=0.9)
        speedups = [row["speedup"] for row in profile]
        assert speedups == sorted(speedups, reverse=True)
        assert all(row["category"] in CATEGORIES for row in profile)

    def test_category_deltas_ranks_the_biggest_mover_first(self):
        before = {"categories": {"network": 10.0, "compute": 5.0}}
        after = {"categories": {"network": 22.0, "compute": 6.0}}
        rows = category_deltas(before, after)
        assert rows[0]["category"] == "network"
        assert rows[0]["delta"] == 12.0
        assert [abs(row["delta"]) for row in rows] == sorted(
            [abs(row["delta"]) for row in rows], reverse=True
        )


def _verdict(run):
    return sorted(
        (r.address.rank, r.address.offset, r.current_rank, r.current_kind.value,
         r.previous_rank, r.symbol)
        for r in run.race_records()
    )


@pytest.mark.parametrize("transport", CLOCK_TRANSPORT_MODES)
@pytest.mark.parametrize("wire", CLOCK_WIRE_FORMATS)
@pytest.mark.parametrize("moderation", [False, True])
@pytest.mark.parametrize("epochs", ["on", "off"])
class TestZeroFootprintWithAnalysis:
    def test_analysis_never_changes_the_run(
        self, transport, wire, moderation, epochs
    ):
        def build(analyze):
            workload = StencilWorkload(
                world_size=3, cells_per_rank=4, iterations=2,
                use_barriers=False,
                config=RuntimeConfig(
                    clock_transport=transport,
                    clock_wire=wire,
                    cq_moderation=moderation,
                    detector_epochs=epochs,
                    trace_spans=analyze,
                ),
            )
            outcome = workload.run(seed=0)
            if analyze:
                # The full post-processing pipeline runs against the live
                # tracer — it must observe, never perturb.
                analyzer = CriticalPathAnalyzer.from_tracer(
                    outcome.runtime.sim.obs.spans,
                    outcome.run.elapsed_sim_time,
                )
                path = analyzer.critical_path()
                assert path.length_exact == Fraction(
                    outcome.run.elapsed_sim_time
                )
                WhatIfEngine(analyzer).profile()
            return outcome.run

        plain, analyzed = build(False), build(True)
        assert _verdict(analyzed) == _verdict(plain)
        assert analyzed.final_shared_values == plain.final_shared_values
        assert json.dumps(analyzed.metrics, sort_keys=True) == json.dumps(
            plain.metrics, sort_keys=True
        )
        assert analyzed.detection_profile == plain.detection_profile
