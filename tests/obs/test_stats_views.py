"""Legacy stats objects are views over the registry: one truth, two spellings."""

from repro.net.clock_transport import CLOCK_TRANSPORT_FIELDS, ClockTransportStats
from repro.net.fabric import FabricStats
from repro.obs.metrics import MetricsRegistry
from repro.workloads.stencil import StencilWorkload


class TestFabricStatsView:
    def test_bare_construction_owns_a_private_registry(self):
        first = FabricStats()
        second = FabricStats()
        first._messages["data"].inc(2)
        assert first.data_messages == 2
        # Two bare instances never share counters.
        assert second.data_messages == 0

    def test_view_reads_through_to_the_shared_registry(self):
        registry = MetricsRegistry()
        stats = FabricStats(registry)
        registry.counter("fabric.messages", category="data").inc(5)
        assert stats.data_messages == 5
        assert stats.total_messages == 5
        assert registry.snapshot()["fabric.messages{category=data}"] == 5

    def test_workload_run_keeps_both_spellings_equal(self):
        result = StencilWorkload(
            world_size=3, cells_per_rank=4, iterations=2
        ).run(seed=0)
        stats = result.run.fabric_stats
        snapshot = result.runtime.sim.obs.metrics.snapshot()
        assert stats.data_messages == snapshot["fabric.messages{category=data}"]
        assert stats.lock_messages == snapshot["fabric.messages{category=lock}"]
        assert (
            stats.detection_messages
            == snapshot["fabric.messages{category=detection}"]
        )
        assert stats.data_bytes == snapshot["fabric.bytes{category=data}"]
        assert stats.total_messages == sum(
            snapshot[f"fabric.messages{{category={c}}}"]
            for c in ("data", "lock", "detection", "other")
        )


class TestClockTransportStatsView:
    def test_every_field_reads_through(self):
        registry = MetricsRegistry()
        stats = ClockTransportStats(registry)
        for index, name in enumerate(CLOCK_TRANSPORT_FIELDS):
            setattr(stats, name, index + 1)
        for index, name in enumerate(CLOCK_TRANSPORT_FIELDS):
            assert getattr(stats, name) == index + 1
            assert (
                registry.snapshot()[f"clock_transport.{name}"] == index + 1
            )
        assert stats.as_dict() == {
            name: index + 1 for index, name in enumerate(CLOCK_TRANSPORT_FIELDS)
        }

    def test_run_totals_equal_the_per_rank_registry_sum(self):
        world_size = 3
        result = StencilWorkload(
            world_size=world_size, cells_per_rank=4, iterations=2
        ).run(seed=0)
        snapshot = result.runtime.sim.obs.metrics.snapshot()
        transport = result.run.clock_transport_stats
        for name in CLOCK_TRANSPORT_FIELDS:
            per_rank = sum(
                snapshot.get(f"clock_transport.{name}{{rank={rank}}}", 0)
                for rank in range(world_size)
            )
            assert transport[name] == per_rank, name
