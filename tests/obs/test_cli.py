"""``python -m repro.obs`` CLI smoke tests (driven through ``main(argv)``)."""

import json

import pytest

from repro.obs.__main__ import main


def test_summarize_fresh_run_prints_instruments(capsys):
    assert main(["summarize", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "instruments" in out
    assert "-- counters" in out
    assert "races detected: 0" in out


def test_summarize_reads_a_snapshot_file(tmp_path, capsys):
    snapshot = {
        "fabric.messages{category=data}": 7,
        "verbs.cq_depth{rank=0}": {"high_watermark": 3, "value": 0},
    }
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(snapshot))
    assert main(["summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "fabric.messages{category=data} = 7" in out
    assert "(high 3)" in out


def test_diff_exits_zero_on_identical_one_on_changed(tmp_path, capsys):
    before = tmp_path / "before.json"
    after = tmp_path / "after.json"
    before.write_text(json.dumps({"a": 1, "b": 2}))
    after.write_text(json.dumps({"a": 1, "b": 3, "c": 4}))
    assert main(["diff", str(before), str(before)]) == 0
    assert "identical" in capsys.readouterr().out
    assert main(["diff", str(before), str(after)]) == 1
    out = capsys.readouterr().out
    assert "ADDED    c = 4" in out
    assert "CHANGED  b: 2 -> 3" in out


def test_export_trace_writes_valid_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    status = main([
        "export-trace", "--racy", "--validate",
        "--out", str(trace_path), "--metrics", str(metrics_path),
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "trace validates" in out
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    tracks = {
        e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
    }
    # Per-rank process tracks plus per-NIC engine tracks.
    assert any(name.startswith("rank-P") for name in tracks)
    assert any(name.startswith("nic-P") for name in tracks)
    # Cross-rank flows: WR post (s) linked to retirement/delivery (f).
    phases = {e["ph"] for e in trace["traceEvents"]}
    assert {"s", "f"} <= phases
    metrics = json.loads(metrics_path.read_text())
    assert metrics and list(metrics) == sorted(metrics)
    # The exported trace passes the standalone validator too.
    assert main(["validate", str(trace_path)]) == 0


def test_validate_rejects_a_broken_trace(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    assert main(["validate", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_unknown_subcommand_is_a_parser_error():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


class TestInputErrorHandling:
    """Missing or malformed inputs exit 2 with a one-line message, no traceback."""

    def test_missing_metrics_file(self, capsys):
        assert main(["summarize", "no/such/metrics.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_malformed_json_reports_line_and_column(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"traceEvents": [')
        assert main(["validate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert "line" in err

    def test_directory_instead_of_file(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path)]) == 2
        assert "directory" in capsys.readouterr().err

    def test_missing_trace_for_critical_path(self, capsys):
        assert main(["critical-path", "--trace", "no/such/trace.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_wrong_metrics_schema_version(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"schema_version": 99, "metrics": {}}))
        assert main(["summarize", str(path)]) == 2
        assert "schema_version" in capsys.readouterr().err

    def test_diff_trace_flags_must_come_in_pairs(self, tmp_path, capsys):
        snapshot = tmp_path / "m.json"
        snapshot.write_text(json.dumps({"a": 1}))
        status = main([
            "diff", str(snapshot), str(snapshot),
            "--trace-before", str(snapshot),
        ])
        assert status == 2
        assert "must be given together" in capsys.readouterr().err


def test_validate_reports_first_failing_event_index(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({
        "traceEvents": [
            {"name": "ok", "ph": "i", "ts": 1.0, "pid": 1, "tid": 1, "s": "t"},
            {"ph": "X"},
        ]
    }))
    assert main(["validate", str(path)]) == 1
    out = capsys.readouterr().out
    assert "first failing event: traceEvents[1]" in out


def _export(tmp_path, *extra):
    trace_path = tmp_path / "trace.json"
    assert main(["export-trace", "--out", str(trace_path), *extra]) == 0
    return trace_path


def test_critical_path_subcommand_from_exported_trace(tmp_path, capsys):
    trace_path = _export(tmp_path)
    out_json = tmp_path / "path.json"
    capsys.readouterr()
    status = main([
        "critical-path", "--trace", str(trace_path), "--json", str(out_json),
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "critical path:" in out
    assert "longest segments" in out
    summary = json.loads(out_json.read_text())
    assert summary["schema_version"] == 1
    assert summary["path_sim_time"] > 0
    assert abs(sum(summary["fractions"].values()) - 1.0) < 1e-12


def test_whatif_subcommand_profile_and_single_category(tmp_path, capsys):
    trace_path = _export(tmp_path)
    capsys.readouterr()
    assert main(["whatif", "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "best payoff first" in out
    assert main([
        "whatif", "--trace", str(trace_path),
        "--category", "network", "--factor", "0.5",
    ]) == 0
    assert "network x0.5" in capsys.readouterr().out
    assert main([
        "whatif", "--trace", str(trace_path), "--category", "bogus",
    ]) == 2
    assert "unknown category" in capsys.readouterr().err


def test_diff_with_traces_prints_movement_table(tmp_path, capsys):
    quiet = _export(tmp_path)
    noisy = tmp_path / "racy.json"
    assert main([
        "export-trace", "--racy", "--seed", "1", "--out", str(noisy),
    ]) == 0
    snapshot = tmp_path / "m.json"
    snapshot.write_text(json.dumps({"a": 1}))
    capsys.readouterr()
    status = main([
        "diff", str(snapshot), str(snapshot),
        "--trace-before", str(quiet), "--trace-after", str(noisy),
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "critical-path movement" in out
