"""``python -m repro.obs`` CLI smoke tests (driven through ``main(argv)``)."""

import json

import pytest

from repro.obs.__main__ import main


def test_summarize_fresh_run_prints_instruments(capsys):
    assert main(["summarize", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "instruments" in out
    assert "-- counters" in out
    assert "races detected: 0" in out


def test_summarize_reads_a_snapshot_file(tmp_path, capsys):
    snapshot = {
        "fabric.messages{category=data}": 7,
        "verbs.cq_depth{rank=0}": {"high_watermark": 3, "value": 0},
    }
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(snapshot))
    assert main(["summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "fabric.messages{category=data} = 7" in out
    assert "(high 3)" in out


def test_diff_exits_zero_on_identical_one_on_changed(tmp_path, capsys):
    before = tmp_path / "before.json"
    after = tmp_path / "after.json"
    before.write_text(json.dumps({"a": 1, "b": 2}))
    after.write_text(json.dumps({"a": 1, "b": 3, "c": 4}))
    assert main(["diff", str(before), str(before)]) == 0
    assert "identical" in capsys.readouterr().out
    assert main(["diff", str(before), str(after)]) == 1
    out = capsys.readouterr().out
    assert "ADDED    c = 4" in out
    assert "CHANGED  b: 2 -> 3" in out


def test_export_trace_writes_valid_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    status = main([
        "export-trace", "--racy", "--validate",
        "--out", str(trace_path), "--metrics", str(metrics_path),
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "trace validates" in out
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    tracks = {
        e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
    }
    # Per-rank process tracks plus per-NIC engine tracks.
    assert any(name.startswith("rank-P") for name in tracks)
    assert any(name.startswith("nic-P") for name in tracks)
    # Cross-rank flows: WR post (s) linked to retirement/delivery (f).
    phases = {e["ph"] for e in trace["traceEvents"]}
    assert {"s", "f"} <= phases
    metrics = json.loads(metrics_path.read_text())
    assert metrics and list(metrics) == sorted(metrics)
    # The exported trace passes the standalone validator too.
    assert main(["validate", str(trace_path)]) == 0


def test_validate_rejects_a_broken_trace(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    assert main(["validate", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_unknown_subcommand_is_a_parser_error():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
