"""Unit tests for the metrics registry: instruments, snapshots, diffs."""

import json

import pytest

from repro.obs.metrics import BUCKET_LAYOUTS, Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_key_spelling_with_labels(self):
        counter = Counter("nic.puts", (("peer", "1"), ("rank", "0")))
        assert counter.key == "nic.puts{peer=1,rank=0}"

    def test_key_without_labels_is_bare_name(self):
        assert Counter("fabric.messages").key == "fabric.messages"


class TestGauge:
    def test_set_tracks_high_watermark(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1
        assert gauge.high_watermark == 3

    def test_inc_dec(self):
        gauge = Gauge("depth")
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 1
        assert gauge.high_watermark == 2


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("wait", layout="sim_time")
        histogram.observe(0.3)   # <= 0.5
        histogram.observe(7.0)   # <= 10
        histogram.observe(1e9)   # overflow
        summary = histogram.as_dict()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.3 + 7.0 + 1e9)
        assert summary["buckets"]["le_0.5"] == 1
        assert summary["buckets"]["le_10"] == 1
        assert summary["buckets"]["le_inf"] == 1

    def test_unknown_layout_is_an_error(self):
        with pytest.raises(KeyError):
            Histogram("wait", layout="nope")

    def test_layouts_are_sorted(self):
        for name, bounds in BUCKET_LAYOUTS.items():
            assert list(bounds) == sorted(bounds), name


class TestMetricsRegistry:
    def test_instruments_are_memoized_by_name_and_labels(self):
        registry = MetricsRegistry()
        assert registry.counter("a", rank=0) is registry.counter("a", rank=0)
        assert registry.counter("a", rank=0) is not registry.counter("a", rank=1)
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.counter("a", x=1, y=2) is registry.counter("a", y=2, x=1)

    def test_snapshot_is_sorted_and_json_canonical(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc(2)
        registry.gauge("m.middle", rank=1).set(4)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["a.first"] == 2
        assert snapshot["m.middle{rank=1}"] == {"high_watermark": 4, "value": 4}
        # to_json is exactly the canonical dump of the snapshot.
        assert registry.to_json() == json.dumps(snapshot, sort_keys=True)

    def test_snapshot_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("nic.puts", rank=0).inc()
        registry.counter("fabric.messages").inc()
        assert list(registry.snapshot(prefix="nic.")) == ["nic.puts{rank=0}"]

    def test_snapshot_for_rank_slices_by_label(self):
        registry = MetricsRegistry()
        registry.counter("nic.puts", rank=0).inc()
        registry.counter("nic.puts", rank=1).inc()
        registry.counter("global.total").inc()
        registry.counter("odd.case", note="rank=1x").inc()  # not an exact label
        assert list(registry.snapshot_for_rank(1)) == ["nic.puts{rank=1}"]

    def test_diff_reports_added_removed_changed(self):
        before = {"a": 1, "b": 2, "gone": 3}
        after = {"a": 1, "b": 5, "new": 7}
        delta = MetricsRegistry.diff(before, after)
        assert delta["added"] == {"new": 7}
        assert delta["removed"] == {"gone": 3}
        assert delta["changed"] == {"b": {"after": 5, "before": 2}}

    def test_reset_zeroes_but_preserves_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        gauge = registry.gauge("g")
        gauge.set(3)
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        registry.reset()
        assert registry.counter("c") is counter and counter.value == 0
        assert gauge.value == 0 and gauge.high_watermark == 0
        assert histogram.count == 0 and histogram.total == 0.0
        assert sum(histogram.bucket_counts) == 0


class TestHistogramQuantiles:
    def test_quantile_interpolates_inside_a_bucket(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", layout="sim_time")
        # 10 samples all in the (1.0, 2.0] bucket.
        for _ in range(10):
            histogram.observe(1.5)
        # The whole mass is in one bucket; quantiles interpolate across it.
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 1.5
        assert histogram.quantile(1.0) == 2.0

    def test_quantile_spans_buckets_by_rank(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", layout="depth")
        for value in (1, 1, 1, 3, 3, 3, 3, 3):  # 3 in le_1, 5 in le_4
            histogram.observe(value)
        # Rank 4 of 8 lands in the (2.0, 4.0] bucket.
        assert 2.0 <= histogram.quantile(0.5) <= 4.0

    def test_overflow_bucket_clamps_to_last_bound(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", layout="bytes")
        histogram.observe(10_000.0)
        assert histogram.quantile(0.99) == 1024.0

    def test_empty_histogram_and_bad_q(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h")
        assert histogram.quantile(0.5) == 0.0
        import pytest

        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)


class TestVersionedExport:
    def test_export_wraps_the_snapshot_in_a_versioned_envelope(self):
        from repro.obs.metrics import METRICS_SCHEMA_VERSION, load_snapshot

        registry = MetricsRegistry()
        registry.counter("c", rank=0).inc(3)
        payload = registry.export()
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION
        assert payload["metrics"] == registry.snapshot()
        # Loaders unwrap the envelope ...
        assert load_snapshot(payload) == registry.snapshot()
        # ... and still accept a bare legacy snapshot.
        assert load_snapshot(registry.snapshot()) == registry.snapshot()

    def test_load_snapshot_rejects_wrong_version_or_shape(self):
        import pytest

        from repro.obs.metrics import load_snapshot

        with pytest.raises(ValueError, match="schema_version"):
            load_snapshot({"schema_version": 99, "metrics": {}})
        with pytest.raises(ValueError, match="metrics"):
            load_snapshot({"schema_version": 1})
