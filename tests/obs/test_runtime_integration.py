"""Observability end-to-end: determinism, rank slicing, zero footprint.

The layer's two integration-level contracts:

* **Determinism** — metric snapshots and detection profiles are byte-identical
  across reruns at equal seeds, and per-schedule snapshots survive the
  campaign's worker sharding unchanged.
* **Zero behavioural footprint** — flipping span tracing on cannot change
  verdicts, final values or the metric snapshot itself, across the whole
  clock-transport × wire-format × CQ-moderation matrix.
"""

import json

import pytest

from repro.net.clock_transport import CLOCK_TRANSPORT_MODES, CLOCK_WIRE_FORMATS
from repro.obs.schema import validate_chrome_trace
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.rpc_echo import RPCEchoWorkload
from repro.workloads.stencil import StencilWorkload


def _verdict(run):
    return sorted(
        (r.address.rank, r.address.offset, r.current_rank, r.current_kind.value,
         r.previous_rank, r.symbol)
        for r in run.race_records()
    )


def _racy_stencil(seed=0, **config_kwargs):
    workload = StencilWorkload(
        world_size=3, cells_per_rank=4, iterations=2, use_barriers=False,
        config=RuntimeConfig(**config_kwargs) if config_kwargs else None,
    )
    return workload.run(seed=seed)


class TestDeterminism:
    def test_metric_snapshot_byte_identical_across_reruns(self):
        first = _racy_stencil(seed=0).run
        second = _racy_stencil(seed=0).run
        assert json.dumps(first.metrics, sort_keys=True) == json.dumps(
            second.metrics, sort_keys=True
        )
        assert first.detection_profile == second.detection_profile
        assert first.metrics, "runtime runs must produce a non-empty snapshot"

    def test_different_seeds_may_differ_but_stay_canonical(self):
        result = _racy_stencil(seed=3).run
        # Canonical form: sorted keys, JSON round-trips losslessly.
        assert list(result.metrics) == sorted(result.metrics)
        assert json.loads(json.dumps(result.metrics)) == result.metrics

    def test_decision_logs_and_outcomes_identical_with_tracing_on(self):
        """Acceptance: tracing cannot perturb explored schedules either —
        fingerprints, decision logs and replay-ready outcomes match."""
        from repro.explore import Explorer
        from repro.workloads.racy_patterns import pattern_corpus

        pattern = {p.name: p for p in pattern_corpus()}["fig5a-concurrent-puts"]

        def explore(trace_spans):
            configure = (
                (lambda rt: rt.sim.obs.configure(trace_spans=True))
                if trace_spans
                else None
            )
            explorer = Explorer(pattern.build, seed=0, configure=configure)
            return explorer.explore_systematic(budget=3, quantum=4.0)

        plain, traced = explore(False), explore(True)
        assert [o.fingerprint for o in plain.outcomes] == [
            o.fingerprint for o in traced.outcomes
        ]
        for before, after in zip(plain.outcomes, traced.outcomes):
            assert json.dumps(
                before.decisions.to_jsonable(), sort_keys=True
            ) == json.dumps(after.decisions.to_jsonable(), sort_keys=True)
            assert before.as_dict() == after.as_dict()

    def test_campaign_outcomes_carry_identical_metrics_across_workers(self):
        from repro.explore.campaign import CampaignConfig, run_campaign

        def outcomes(workers):
            report = run_campaign(
                CampaignConfig(
                    strategy="systematic", budget=3, seed=0, quantum=4.0,
                    workers=workers,
                ),
                patterns=["fig5a-concurrent-puts"],
            )
            (pattern,) = report.per_pattern
            return pattern["outcomes"]

        inline, sharded = outcomes(0), outcomes(2)
        assert inline == sharded
        assert all(o["metrics"] for o in inline)


class TestRankSlicing:
    def test_api_metrics_returns_only_this_ranks_slice(self):
        captured = {}
        runtime = DSMRuntime(RuntimeConfig(world_size=2, seed=0))
        runtime.declare_array("data", 2, initial=0.0)

        def program(api):
            yield from api.put("data", float(api.rank + 1), index=api.rank)
            captured[api.rank] = api.metrics()

        runtime.set_spmd_program(program)
        runtime.run()
        assert set(captured) == {0, 1}
        for rank, snapshot in captured.items():
            assert snapshot, f"rank {rank} saw no labelled instruments"
            for key in snapshot:
                labels = key[key.index("{"):].strip("{}").split(",")
                assert f"rank={rank}" in labels, key


@pytest.mark.parametrize("transport", CLOCK_TRANSPORT_MODES)
@pytest.mark.parametrize("wire", CLOCK_WIRE_FORMATS)
@pytest.mark.parametrize("moderation", [False, True])
class TestZeroFootprint:
    def test_tracing_never_changes_the_run(self, transport, wire, moderation):
        def build(trace_spans):
            workload = RPCEchoWorkload(
                num_clients=2,
                requests_per_client=2,
                racy_buffer_reuse=True,
                config=RuntimeConfig(
                    clock_transport=transport,
                    clock_wire=wire,
                    cq_moderation=moderation,
                    trace_spans=trace_spans,
                ),
            )
            return workload.run(seed=0)

        plain, traced = build(False), build(True)
        assert _verdict(traced.run) == _verdict(plain.run)
        assert traced.run.final_shared_values == plain.run.final_shared_values
        assert traced.run.race_count > 0
        assert json.dumps(traced.run.metrics, sort_keys=True) == json.dumps(
            plain.run.metrics, sort_keys=True
        )
        assert traced.run.detection_profile == plain.run.detection_profile
        # The traced run exports a valid Chrome trace; the plain run recorded
        # nothing at all.
        tracer = traced.runtime.sim.obs.spans
        assert tracer.events()
        assert tracer.open_spans() == []
        assert validate_chrome_trace(tracer.to_chrome_trace()) == []
        assert plain.runtime.sim.obs.spans.events() == []
        # Well-formedness: per track, events are emitted in nondecreasing
        # sim-time order (an X span is emitted at its *end*).
        last_finish = {}
        for event in tracer.events():
            if event["ph"] == "M":
                continue
            track = (event["pid"], event["tid"])
            finish = event["ts"] + event.get("dur", 0.0)
            assert finish >= last_finish.get(track, 0.0) - 1e-9, event
            last_finish[track] = max(last_finish.get(track, 0.0), finish)


@pytest.mark.parametrize("flow_control", ["rnr", "credit"])
@pytest.mark.parametrize("timer", [None, (2, 1.5)])
@pytest.mark.parametrize("resync", [16, "adaptive"])
class TestControlPlaneZeroFootprint:
    """The adaptive control plane joins the zero-footprint matrix: span
    tracing cannot change verdicts, final values or the metric snapshot
    under any flow-control × moderation-timer × resync-cadence setting."""

    def test_tracing_never_changes_the_run(self, flow_control, timer, resync):
        def build(trace_spans):
            workload = RPCEchoWorkload(
                num_clients=2,
                requests_per_client=2,
                racy_buffer_reuse=True,
                config=RuntimeConfig(
                    clock_transport="piggyback",
                    clock_wire="delta",
                    clock_wire_resync=resync,
                    flow_control=flow_control,
                    cq_moderation_timer=timer,
                    trace_spans=trace_spans,
                ),
            )
            return workload.run(seed=0)

        plain, traced = build(False), build(True)
        assert _verdict(traced.run) == _verdict(plain.run)
        assert traced.run.final_shared_values == plain.run.final_shared_values
        assert traced.run.race_count > 0
        assert json.dumps(traced.run.metrics, sort_keys=True) == json.dumps(
            plain.run.metrics, sort_keys=True
        )
        assert traced.run.detection_profile == plain.run.detection_profile
        assert validate_chrome_trace(
            traced.runtime.sim.obs.spans.to_chrome_trace()
        ) == []
        assert plain.runtime.sim.obs.spans.events() == []

    def test_default_mode_snapshot_untouched_by_knob_instruments(
        self, flow_control, timer, resync
    ):
        """Lazy instruments: a default-mode run's metric snapshot carries no
        credit or timer instruments, whatever this leg's knobs would add."""
        del flow_control, timer, resync  # the default run ignores the leg
        workload = RPCEchoWorkload(
            num_clients=2, requests_per_client=2, racy_buffer_reuse=True
        )
        snapshot = workload.run(seed=0).run.metrics
        assert not any("credit" in key for key in snapshot)
        assert not any("cq_timer" in key for key in snapshot)
