"""Unit tests for the span tracer and the Chrome trace-event validator."""

from repro.obs.schema import validate_chrome_trace
from repro.obs.spans import SIM_TIME_TO_US, SpanTracer


def _events_of(tracer, phase=None):
    events = [e for e in tracer.events() if e["ph"] != "M"]
    if phase is not None:
        events = [e for e in events if e["ph"] == phase]
    return events


class TestSpanTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        handle = tracer.begin("t", "span", 0.0)
        tracer.end(handle, 1.0)
        tracer.complete("t", "span", 0.0, 1.0)
        tracer.instant("t", "tick", 0.5)
        tracer.flow_start("t", "wr", 0.0, key="k")
        tracer.flow_end("t", "wr", 1.0, key="k")
        assert tracer.events() == []
        assert tracer.tracks() == []

    def test_complete_span_converts_sim_time(self):
        tracer = SpanTracer(enabled=True)
        tracer.complete("rank-P0", "qp_drain", 2.0, 5.0, peer="P1")
        (event,) = _events_of(tracer)
        assert event["ph"] == "X"
        assert event["ts"] == 2.0 * SIM_TIME_TO_US
        assert event["dur"] == 3.0 * SIM_TIME_TO_US
        assert event["args"]["peer"] == "P1"

    def test_begin_end_pair_drains_open_spans(self):
        tracer = SpanTracer(enabled=True)
        handle = tracer.begin("t", "span", 0.0, wr_id=3)
        assert len(tracer.open_spans()) == 1
        tracer.end(handle, 4.0)
        assert tracer.open_spans() == []
        (event,) = _events_of(tracer)
        assert event["ph"] == "X"
        assert event["ts"] == 0.0 and event["dur"] == 4.0 * SIM_TIME_TO_US
        assert event["args"] == {"wr_id": 3}

    def test_flow_ids_are_memoized_per_key(self):
        tracer = SpanTracer(enabled=True)
        tracer.flow_start("a", "wr", 0.0, key=("wr", 0, 1))
        tracer.flow_end("b", "wr", 1.0, key=("wr", 0, 1))
        tracer.flow_start("a", "wr", 2.0, key=("wr", 0, 2))
        start1, end1, start2 = _events_of(tracer)
        assert start1["ph"] == "s" and end1["ph"] == "f"
        assert start1["id"] == end1["id"]
        assert start2["id"] != start1["id"]

    def test_tracks_get_stable_pids_and_metadata(self):
        tracer = SpanTracer(enabled=True)
        tracer.instant("rank-P0", "a", 0.0)
        tracer.instant("nic-P0", "b", 0.0)
        tracer.instant("rank-P0", "c", 1.0)
        assert tracer.tracks() == ["rank-P0", "nic-P0"]
        metadata = [e for e in tracer.events() if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metadata} == {"rank-P0", "nic-P0"}
        by_track = {e["args"].get("name"): e["pid"] for e in metadata}
        named = [e for e in _events_of(tracer)]
        assert named[0]["pid"] == named[2]["pid"] == by_track["rank-P0"]

    def test_to_chrome_trace_validates_and_clear_empties(self):
        tracer = SpanTracer(enabled=True)
        tracer.complete("t", "x", 0.0, 1.0)
        tracer.flow_start("t", "wr", 0.0, key="k")
        tracer.flow_end("t", "wr", 1.0, key="k")
        assert validate_chrome_trace(tracer.to_chrome_trace()) == []
        tracer.clear()
        assert tracer.events() == []
        assert tracer.tracks() == []


class TestValidator:
    def test_rejects_non_object_top_level(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"noTraceEvents": 1}) != []

    def test_flags_missing_required_keys(self):
        trace = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0}]}
        problems = validate_chrome_trace(trace)
        assert any("'dur'" in p for p in problems)

    def test_flags_unmatched_flows_and_unbalanced_begins(self):
        trace = {
            "traceEvents": [
                {"ph": "s", "pid": 1, "tid": 1, "name": "wr", "ts": 0, "id": 7},
                {"ph": "B", "pid": 1, "tid": 1, "name": "span", "ts": 0},
            ]
        }
        problems = validate_chrome_trace(trace)
        assert any("flow id 7" in p for p in problems)
        assert any("unbalanced B/E" in p for p in problems)

    def test_flags_unknown_phase_and_non_numeric_ts(self):
        trace = {
            "traceEvents": [
                {"ph": "Q", "pid": 1, "tid": 1, "name": "x"},
                {"ph": "i", "pid": 1, "tid": 1, "name": "y", "ts": "late"},
            ]
        }
        problems = validate_chrome_trace(trace)
        assert any("unknown phase 'Q'" in p for p in problems)
        assert any("'ts' must be numeric" in p for p in problems)


class TestTraceSchemaVersion:
    def test_exported_traces_are_stamped(self):
        from repro.obs.spans import TRACE_SCHEMA_VERSION, SpanTracer

        tracer = SpanTracer(enabled=True)
        tracer.instant("rank-P0", "tick", sim_time=0.0)
        trace = tracer.to_chrome_trace()
        assert trace["schema_version"] == TRACE_SCHEMA_VERSION
        assert validate_chrome_trace(trace) == []

    def test_validator_accepts_legacy_traces_without_the_field(self):
        # Traces exported before versioning carry no schema_version; they
        # must keep validating (absent is legacy, not broken).
        assert validate_chrome_trace({"traceEvents": []}) == []

    def test_validator_rejects_a_mismatching_version(self):
        problems = validate_chrome_trace(
            {"schema_version": 99, "traceEvents": []}
        )
        assert problems
        assert any("schema_version" in problem for problem in problems)


class TestVerbLatencyHistograms:
    def test_traced_run_records_per_op_service_and_retire_latency(self):
        from repro.workloads.verbs_stencil import VerbsStencilWorkload

        outcome = VerbsStencilWorkload(
            world_size=3, cells_per_rank=4, iterations=2, use_barriers=True
        ).run(seed=0)
        metrics = outcome.run.metrics
        service = [k for k in metrics if k.startswith("verbs.latency.service{")]
        retire = [k for k in metrics if k.startswith("verbs.latency.retire{")]
        assert service and retire
        # Labelled per verb opcode, with real observations in each.
        assert any("opcode=" in key for key in service)
        for key in service + retire:
            entry = metrics[key]
            assert entry["count"] > 0
            assert sum(entry["buckets"].values()) == entry["count"]
