"""Unit tests for the detection profiler."""

from repro.obs.profiler import CHECK_TYPES, DetectionProfiler


class TestDetectionProfiler:
    def test_check_types_cover_the_matrix(self):
        assert set(CHECK_TYPES) == {
            (kind, provenance)
            for kind in ("read", "write", "rmw")
            for provenance in ("live", "carried")
        }

    def test_record_accumulates_into_the_right_bucket(self):
        profiler = DetectionProfiler()
        profiler.record("write", live=True, compares=2, joins=3)
        profiler.record("write", live=True, compares=0, joins=1, epoch_hits=1)
        profiler.record("read", live=False, compares=1, joins=2)
        snapshot = profiler.snapshot()
        assert snapshot["write_live"] == {
            "checks": 2,
            "compares": 2,
            "joins": 4,
            "epoch_hits": 1,
        }
        assert snapshot["read_carried"] == {
            "checks": 1,
            "compares": 1,
            "joins": 2,
            "epoch_hits": 0,
        }
        assert snapshot["rmw_live"] == {
            "checks": 0,
            "compares": 0,
            "joins": 0,
            "epoch_hits": 0,
        }

    def test_snapshot_is_deterministic_without_wall_clock(self):
        profiler = DetectionProfiler()
        assert profiler.start() is None
        profiler.record("read", live=True, started=None, compares=2, joins=1)
        for entry in profiler.snapshot().values():
            assert "wall_ns" not in entry

    def test_wall_clock_mode_adds_wall_ns(self):
        profiler = DetectionProfiler(wall_clock=True)
        started = profiler.start()
        assert isinstance(started, int)
        profiler.record("rmw", live=False, started=started)
        entry = profiler.snapshot()["rmw_carried"]
        assert entry["checks"] == 1
        assert entry["wall_ns"] >= 0

    def test_totals_merge_and_reset(self):
        left = DetectionProfiler()
        left.record("write", live=True, compares=2, joins=3)
        right = DetectionProfiler()
        right.record("write", live=True, compares=1, joins=1, epoch_hits=2)
        right.record("read", live=False, joins=5)
        assert left.merge(right) is left
        assert left.totals() == {
            "checks": 3,
            "compares": 3,
            "joins": 9,
            "epoch_hits": 2,
        }
        left.reset()
        assert left.totals() == {
            "checks": 0,
            "compares": 0,
            "joins": 0,
            "epoch_hits": 0,
        }
