"""Unit tests for the DSM runtime: construction, programs, results."""

import pytest

from repro.core.detector import DetectorConfig
from repro.core.races import SignalPolicy
from repro.memory.directory import PlacementPolicy
from repro.net.latency import ConstantLatency
from repro.net.topology import Topology
from repro.runtime.runtime import DSMRuntime, RunResult, RuntimeConfig


def idle(api):
    yield from api.compute(0.0)


class TestConstruction:
    def test_default_configuration(self):
        runtime = DSMRuntime()
        assert runtime.config.world_size == 4
        assert len(runtime.nics) == 4
        assert runtime.topology.name.startswith("complete")

    def test_overrides_via_kwargs(self):
        runtime = DSMRuntime(world_size=2, topology="ring")
        assert runtime.config.world_size == 2
        assert runtime.topology.name.startswith("ring")

    def test_topology_instance_must_match_world_size(self):
        with pytest.raises(ValueError):
            DSMRuntime(RuntimeConfig(world_size=4, topology=Topology.complete(3)))

    def test_named_latency_models(self):
        for name in ("constant", "uniform", "loggp"):
            runtime = DSMRuntime(RuntimeConfig(world_size=2, latency=name))
            assert runtime.latency_model is not None

    def test_latency_instance_accepted(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2, latency=ConstantLatency(base=9.0)))
        assert runtime.latency_model.base == 9.0

    def test_unknown_topology_or_latency_rejected(self):
        with pytest.raises(ValueError):
            DSMRuntime(RuntimeConfig(world_size=3, topology="moebius"))
        with pytest.raises(ValueError):
            DSMRuntime(RuntimeConfig(world_size=3, latency="tachyonic"))

    def test_hypercube_requires_power_of_two(self):
        assert DSMRuntime(RuntimeConfig(world_size=4, topology="hypercube")).topology.world_size == 4
        with pytest.raises(ValueError):
            DSMRuntime(RuntimeConfig(world_size=6, topology="hypercube"))

    def test_config_with_overrides_returns_copy(self):
        config = RuntimeConfig(world_size=4)
        other = config.with_overrides(world_size=8)
        assert config.world_size == 4 and other.world_size == 8


class TestExecution:
    def test_put_and_get_through_symbols(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=3))
        runtime.declare_scalar("x", owner=1, initial=0)

        def writer(api):
            yield from api.put("x", 99)

        def reader(api):
            yield from api.compute(30.0)
            value = yield from api.get("x")
            api.private.write("seen", value)

        runtime.set_program(0, writer)
        runtime.set_program(1, idle)
        runtime.set_program(2, reader)
        result = runtime.run()
        assert result.shared_value("x") == 99
        assert result.per_rank_private[2]["seen"] == 99
        assert isinstance(result, RunResult)

    def test_run_requires_programs(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        with pytest.raises(RuntimeError, match="no programs"):
            runtime.run()

    def test_run_only_once(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        runtime.set_spmd_program(idle)
        runtime.run()
        with pytest.raises(RuntimeError):
            runtime.run()

    def test_idle_ranks_are_allowed(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=4))
        runtime.set_program(0, idle)
        result = runtime.run()
        assert result.elapsed_sim_time >= 0.0

    def test_invalid_rank_for_program(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        with pytest.raises(ValueError):
            runtime.set_program(5, idle)

    def test_spmd_with_per_rank_kwargs(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=3))
        runtime.declare_array("out", 3, policy=PlacementPolicy.OWNER, owner=0)

        def program(api, multiplier=1):
            yield from api.put("out", api.rank * multiplier, index=api.rank)

        runtime.set_spmd_program(program, per_rank_kwargs={2: {"multiplier": 10}})
        result = runtime.run()
        assert result.final_shared_values["out"] == [0, 1, 20]

    def test_detection_can_be_disabled(self):
        config = RuntimeConfig(world_size=3, detector=DetectorConfig(enabled=False))
        runtime = DSMRuntime(config)
        runtime.declare_scalar("x", owner=1)

        def writer(api):
            yield from api.put("x", api.rank)

        runtime.set_program(0, writer)
        runtime.set_program(1, idle)
        runtime.set_program(2, writer)
        result = runtime.run()
        assert result.race_count == 0
        assert result.fabric_stats.detection_messages == 0
        assert result.detection_control_messages == 0

    def test_signal_policy_warn_prints(self, capsys):
        config = RuntimeConfig(world_size=3, signal_policy=SignalPolicy.WARN)
        runtime = DSMRuntime(config)
        runtime.declare_scalar("x", owner=1)

        def writer(api):
            yield from api.put("x", api.rank)

        runtime.set_program(0, writer)
        runtime.set_program(1, idle)
        runtime.set_program(2, writer)
        runtime.run()
        assert "RACE" in capsys.readouterr().out

    def test_consistency_check_passes_for_serialized_accesses(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=3))
        runtime.declare_scalar("x", owner=1, initial="init")

        def writer(api):
            yield from api.put("x", f"from-{api.rank}")
            value = yield from api.get("x")
            api.private.write("readback", value)

        runtime.set_spmd_program(writer)
        runtime.run()
        assert runtime.consistency_check() == []

    def test_final_values_and_trace_summary(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        runtime.declare_array("arr", 4, policy=PlacementPolicy.BLOCK, initial=0)

        def writer(api):
            for index in range(4):
                yield from api.put("arr", index * 2, index=index)

        runtime.set_program(0, writer)
        runtime.set_program(1, idle)
        result = runtime.run()
        assert result.final_shared_values["arr"] == [0, 2, 4, 6]
        assert result.trace_summary.writes == 4
        assert result.trace_summary.world_size == 2

    def test_run_until_stops_early(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))

        def long_program(api):
            yield from api.compute(1000.0)

        runtime.set_spmd_program(long_program)
        result = runtime.run(until=10.0, check_locks=False)
        assert result.elapsed_sim_time == 10.0
