"""Unit tests for the process API, barriers and collectives."""

import pytest

from repro.memory.directory import PlacementPolicy
from repro.runtime.collectives import broadcast_via_puts, one_sided_reduction
from repro.runtime.program import ProcessProgram, replicate_program
from repro.runtime.runtime import DSMRuntime, RuntimeConfig


def idle(api):
    yield from api.compute(0.0)


class TestProcessAPI:
    def test_address_resolution_helpers(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=3))
        runtime.declare_scalar("x", owner=2)
        api = runtime.api(0)
        assert api.owner_of("x") == 2
        assert api.address_of("x").rank == 2
        assert api.world_size == 3

    def test_put_get_by_explicit_address(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        runtime.declare_scalar("x", owner=1, initial=0)
        address = runtime.directory.resolve("x")

        def program(api):
            yield from api.put_address(address, 123, symbol="x")
            value = yield from api.get_address(address, symbol="x")
            api.private.write("value", value)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        result = runtime.run()
        assert result.per_rank_private[0]["value"] == 123

    def test_copy_shared_moves_data_between_public_areas(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=3))
        runtime.declare_scalar("src", owner=1, initial="payload")
        runtime.declare_scalar("dst", owner=2, initial=None)

        def copier(api):
            yield from api.copy_shared("src", 0, "dst", 0)

        runtime.set_program(0, copier)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        result = runtime.run()
        assert result.shared_value("dst") == "payload"

    def test_operation_results_accumulate(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        runtime.declare_scalar("x", owner=1, initial=0)

        def program(api):
            yield from api.put("x", 1)
            yield from api.get("x")

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.run()
        results = runtime.api(0).operation_results()
        assert [r.operation for r in results] == ["put", "get"]
        assert all(r.elapsed >= 0 for r in results)

    def test_get_result_returns_full_record(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        runtime.declare_scalar("x", owner=1, initial=7)

        def program(api):
            record = yield from api.get_result("x")
            api.private.write("messages", record.data_messages)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        result = runtime.run()
        assert result.per_rank_private[0]["messages"] == 2

    def test_compute_rejects_negative(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))

        def program(api):
            yield from api.compute(-1.0)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        with pytest.raises(Exception):
            runtime.run()

    def test_log_records_to_sim_logger(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))

        def program(api):
            api.log("hello from the program")
            yield from api.compute(0.0)

        runtime.set_program(0, program)
        runtime.set_program(1, idle)
        runtime.run()
        assert any("hello" in r.message for r in runtime.logger.records("app"))


class TestBarrier:
    def test_barrier_synchronizes_times(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=3))
        arrivals = {}

        def program(api):
            yield from api.compute(float(api.rank) * 5.0)
            yield from api.barrier()
            arrivals[api.rank] = api.now

        runtime.set_spmd_program(program)
        runtime.run()
        # Nobody leaves the barrier before the slowest arrival (t = 10).
        assert all(time >= 10.0 for time in arrivals.values())
        assert runtime.barrier.crossings == 1

    def test_barrier_is_reusable_across_generations(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        crossings = []

        def program(api):
            for _ in range(3):
                generation = yield from api.barrier()
                crossings.append((api.rank, generation))

        runtime.set_spmd_program(program)
        runtime.run()
        assert runtime.barrier.crossings == 3
        generations = sorted({generation for _rank, generation in crossings})
        assert generations == [0, 1, 2]

    def test_barrier_orders_conflicting_accesses(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        runtime.declare_scalar("x", owner=0, initial=0)

        def writer(api):
            yield from api.put("x", 1)
            yield from api.barrier()

        def reader(api):
            yield from api.barrier()
            value = yield from api.get("x")
            api.private.write("value", value)

        runtime.set_program(0, writer)
        runtime.set_program(1, reader)
        result = runtime.run()
        assert result.race_count == 0
        assert result.per_rank_private[1]["value"] == 1

    def test_single_rank_barrier_is_trivial(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=1))

        def program(api):
            yield from api.barrier()
            yield from api.barrier()

        runtime.set_program(0, program)
        runtime.run()
        assert runtime.barrier.crossings == 2


class TestCollectives:
    def test_one_sided_reduction_sums_contributions(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=4))
        runtime.declare_array("vals", 4, policy=PlacementPolicy.BLOCK, initial=0)

        def program(api):
            yield from api.put("vals", api.rank + 1, index=api.rank)
            yield from api.barrier()
            if api.rank == 0:
                total = yield from api.reduce_shared("vals", 4)
                api.private.write("total", total)

        runtime.set_spmd_program(program)
        result = runtime.run()
        assert result.per_rank_private[0]["total"] == 10
        assert result.race_count == 0

    def test_broadcast_via_puts(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=3))
        runtime.declare_array("slots", 3, policy=PlacementPolicy.ROUND_ROBIN, initial=None)

        def program(api):
            yield from broadcast_via_puts(api, "slots", "announcement")
            yield from api.barrier()
            value = yield from api.get("slots", index=api.rank)
            api.private.write("received", value)

        runtime.set_spmd_program(program)
        result = runtime.run()
        for rank in range(3):
            assert result.per_rank_private[rank]["received"] == "announcement"

    def test_reduction_requires_positive_length(self):
        runtime = DSMRuntime(RuntimeConfig(world_size=2))
        api = runtime.api(0)
        with pytest.raises(ValueError):
            list(one_sided_reduction(api, "x", 0, lambda a, b: a + b))


class TestProgramDescriptors:
    def test_replicate_program_builds_one_per_rank(self):
        programs = replicate_program(idle, 3)
        assert [p.rank for p in programs] == [0, 1, 2]
        assert all(p.display_name == f"rank-{p.rank}" for p in programs)

    def test_replicate_rejects_bad_world_size(self):
        with pytest.raises(ValueError):
            replicate_program(idle, 0)

    def test_kwargs_are_passed_to_the_function(self):
        seen = {}

        def program(api, tag=None):
            seen[api] = tag
            yield from api.compute(0.0)

        descriptor = ProcessProgram(rank=0, function=program, kwargs=(("tag", "hello"),))
        generator = descriptor.launch(api="fake-api")
        assert generator is not None
