"""The docs can't rot: every ``python`` code block runs, every link resolves.

Conventions enforced here (and relied on by the CI docs job):

* every fenced ```` ```python ```` block in ``README.md`` and ``docs/*.md``
  must be self-contained and executable as written — fragments belong in
  ```` ```text ```` fences;
* every relative markdown link must point at an existing file (or directory),
  and a ``#fragment`` on a markdown target must match one of its headings.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

FENCE = re.compile(r"^```(\w*)\s*$")
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def extract_blocks(path, language):
    """Yield (start_line, source) for each fenced block of *language*."""
    blocks = []
    lines = path.read_text().splitlines()
    inside, start, buffer = False, 0, []
    for number, line in enumerate(lines, start=1):
        fence = FENCE.match(line)
        if fence and not inside:
            inside, start, buffer = fence.group(1) == language, number, []
            continue
        if line.strip() == "```" and inside is not False:
            if inside is True:
                blocks.append((start, "\n".join(buffer)))
            inside = False
            continue
        if inside is True:
            buffer.append(line)
    return blocks


def github_anchor(heading):
    """GitHub's anchor slug: lowercase, punctuation stripped, spaces->dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\sÀ-￿-]", "", slug)
    return re.sub(r"\s", "-", slug)


def doc_ids():
    return [path.relative_to(REPO_ROOT).as_posix() for path in DOC_FILES]


@pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids())
def test_every_python_block_executes(doc):
    blocks = extract_blocks(doc, "python")
    for start, source in blocks:
        namespace = {"__name__": f"doc_block_{doc.stem}_{start}"}
        try:
            exec(compile(source, f"{doc.name}:{start}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - the message is the point
            pytest.fail(
                f"{doc.relative_to(REPO_ROOT)} line {start}: code block "
                f"raised {type(error).__name__}: {error}"
            )


def test_readme_and_docs_actually_contain_examples():
    """The executable-docs guarantee is vacuous if nothing is executable."""
    counted = {
        doc.name: len(extract_blocks(doc, "python")) for doc in DOC_FILES
    }
    assert counted["README.md"] >= 2, counted
    assert counted["verbs.md"] >= 2, counted
    assert counted["architecture.md"] >= 1, counted


@pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids())
def test_relative_links_resolve(doc):
    text = doc.read_text()
    problems = []
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: not checked offline
        path_part, _, fragment = target.partition("#")
        resolved = (
            doc.parent / path_part if path_part else doc
        ).resolve()
        if not resolved.exists():
            problems.append(f"{target}: no such file {resolved}")
            continue
        if fragment and resolved.suffix == ".md":
            anchors = {
                github_anchor(h) for h in HEADING.findall(resolved.read_text())
            }
            if fragment not in anchors:
                problems.append(f"{target}: no heading for #{fragment}")
    assert not problems, (
        f"{doc.relative_to(REPO_ROOT)} has broken links:\n  "
        + "\n  ".join(problems)
    )


def test_every_verbs_module_names_its_real_verbs_analogue():
    """Each repro.verbs module documents which ibv_* construct it models."""
    undocumented = []
    for module in sorted((REPO_ROOT / "src" / "repro" / "verbs").glob("*.py")):
        head = module.read_text()[:2000]
        if "ibv_" not in head:
            undocumented.append(module.name)
    assert not undocumented, (
        f"verbs modules without a real-verbs analogue in their docstring: "
        f"{undocumented}"
    )


def test_docs_cover_every_benchmark_file():
    """docs/benchmarks.md must name every bench_*.py, so new benchmarks
    cannot land undocumented."""
    table = (REPO_ROOT / "docs" / "benchmarks.md").read_text()
    missing = [
        bench.name
        for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py"))
        if bench.name not in table
    ]
    assert not missing, f"benchmarks missing from docs/benchmarks.md: {missing}"
