"""Integration tests spanning simulator, network, memory, runtime and detector."""

import pytest

from repro.core.detector import DetectorConfig
from repro.detectors import PostMortemDualClockDetector, SeedVaryingOracle, SingleClockDetector
from repro.memory.directory import PlacementPolicy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads import (
    MasterWorkerWorkload,
    OneSidedReductionWorkload,
    RandomAccessWorkload,
    StencilWorkload,
    pattern_corpus,
)


class TestCoherenceOfTheSimulatedMemory:
    """The substrate itself must be coherent: reads return the latest write."""

    @pytest.mark.parametrize("topology", ["complete", "ring", "star"])
    @pytest.mark.parametrize("latency", ["constant", "uniform"])
    def test_every_trace_is_per_cell_coherent(self, topology, latency):
        workload = RandomAccessWorkload(
            world_size=4, operations_per_rank=12, hotspot_fraction=0.5, write_fraction=0.6,
            config=RuntimeConfig(topology=topology, latency=latency),
        )
        runtime = workload.build(seed=11)
        runtime.run()
        assert runtime.consistency_check() == []

    def test_locks_are_quiescent_after_every_workload(self):
        for workload in (
            StencilWorkload(world_size=3, iterations=2),
            OneSidedReductionWorkload(world_size=4),
            MasterWorkerWorkload(world_size=3, tasks=4),
        ):
            runtime = workload.build(seed=5)
            runtime.run()
            for table in runtime.lock_tables:
                table.assert_quiescent()


class TestOnlineAndOfflineDetectionAgree:
    """The communication-library and pre-compiler deployments (Section V-B)."""

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_postmortem_replay_matches_online_report(self, seed):
        workload = RandomAccessWorkload(
            world_size=4, operations_per_rank=10, hotspot_fraction=0.7, write_fraction=0.6
        )
        runtime = workload.build(seed=seed)
        result = runtime.run()
        offline = PostMortemDualClockDetector().detect(
            runtime.recorder.accesses(),
            runtime.config.world_size,
            syncs=runtime.recorder.syncs(),
        )
        assert offline.count() == result.race_count
        online_addresses = {record.address for record in result.race_records()}
        assert offline.flagged_addresses() == online_addresses

    def test_single_clock_baseline_is_a_superset_with_read_read_noise(self):
        workload = RandomAccessWorkload(
            world_size=4, operations_per_rank=12, hotspot_fraction=0.7, write_fraction=0.3
        )
        runtime = workload.build(seed=2)
        result = runtime.run()
        baseline = SingleClockDetector()
        findings = baseline.detect(runtime.recorder.accesses(), 4)
        assert findings.count() >= result.race_count
        # And the extra findings include pure read-read pairs (false positives).
        if findings.count() > result.race_count:
            assert baseline.read_read_findings(findings)


class TestDetectorAgainstGroundTruth:
    def test_every_symbol_flagged_on_a_clean_program_is_truly_clean(self):
        """On race-free corpus entries the detector must flag nothing (no FPs)."""
        for pattern in pattern_corpus():
            if pattern.racy:
                continue
            result = pattern.run(seed=1)
            assert result.race_count == 0, f"false positive on {pattern.name}"

    def test_every_racy_corpus_entry_is_flagged(self):
        for pattern in pattern_corpus():
            if not pattern.racy:
                continue
            result = pattern.run(seed=1)
            assert result.race_count > 0, f"missed race on {pattern.name}"

    def test_oracle_confirms_detector_on_unsynchronized_reduction(self):
        workload = OneSidedReductionWorkload(world_size=5, synchronize=False)
        truth = SeedVaryingOracle(workload.factory(), seeds=range(6)).evaluate()
        detection_runs = [run.race_count > 0 for run in truth.runs.values()]
        assert truth.racy
        assert any(detection_runs)


class TestDetectionDoesNotPerturbResults:
    """Enabling detection must not change what the program computes."""

    @pytest.mark.parametrize("seed", [0, 4])
    def test_final_shared_values_identical_with_and_without_detection(self, seed):
        def build(enabled):
            workload = StencilWorkload(
                world_size=4, cells_per_rank=6, iterations=3, use_barriers=True,
                config=RuntimeConfig(detector=DetectorConfig(enabled=enabled)),
            )
            runtime = workload.build(seed=seed)
            return runtime.run()

        with_detection = build(True)
        without_detection = build(False)
        assert with_detection.final_shared_values == without_detection.final_shared_values

    def test_detection_only_adds_control_traffic(self):
        def run(enabled):
            workload = OneSidedReductionWorkload(
                world_size=4, synchronize=True,
                config=RuntimeConfig(detector=DetectorConfig(enabled=enabled)),
            )
            return workload.run(seed=0).run

        instrumented = run(True)
        baseline = run(False)
        assert instrumented.fabric_stats.data_messages == baseline.fabric_stats.data_messages
        assert instrumented.fabric_stats.detection_messages > 0
        assert baseline.fabric_stats.detection_messages == 0


class TestScaleAndTopologies:
    @pytest.mark.parametrize("world_size", [2, 4, 8, 16])
    def test_debugging_scale_runs_complete(self, world_size):
        """The paper targets ~10 processes; the simulator handles 2..16 easily."""
        workload = RandomAccessWorkload(
            world_size=world_size, operations_per_rank=4, hotspot_fraction=0.4
        )
        outcome = workload.run(seed=0)
        assert outcome.run.trace_summary.accesses >= world_size * 4

    def test_mesh_topology_and_loggp_latency(self):
        config = RuntimeConfig(world_size=4, topology="mesh", latency="loggp")
        runtime = DSMRuntime(config)
        runtime.declare_array("data", 8, policy=PlacementPolicy.BLOCK, initial=0)

        def program(api):
            yield from api.put("data", api.rank, index=api.rank)
            yield from api.barrier()
            total = yield from api.reduce_shared("data", 4)
            api.private.write("total", total)

        runtime.set_spmd_program(program)
        result = runtime.run()
        assert result.per_rank_private[0]["total"] == 0 + 1 + 2 + 3
        assert result.race_count == 0

    def test_larger_world_needs_larger_clocks(self):
        small = RandomAccessWorkload(world_size=2, operations_per_rank=4).run(seed=0).run
        large = RandomAccessWorkload(world_size=8, operations_per_rank=4).run(seed=0).run
        assert large.clock_storage_entries > small.clock_storage_entries
