"""End-to-end checks of the verbs subsystem against the ground-truth oracle.

The acceptance bar for the atomics: on programs with *injected* RMW races —
plain accesses causally unordered with one-sided atomics on the same cell,
whose outcome genuinely varies across interleavings — the dual-clock
detector must reach recall 1.0 (no false negatives): every address the
execution-varying oracle labels racy is flagged in every execution.
"""

import pytest

from repro.core.detector import DetectorConfig
from repro.detectors.ground_truth import SeedVaryingOracle
from repro.runtime.runtime import DSMRuntime, RuntimeConfig


def idle(api):
    yield from api.compute(0.0)


def _race_flagged_addresses(runtime):
    return {record.address for record in runtime.report.records()}


def make_put_vs_fetch_add(detector_config):
    """Rank 0 puts 100 into x while rank 2 atomically increments it.

    Final value is 100 or 101 depending on arrival order: an observable race
    between a plain write and an RMW.
    """

    def factory(seed):
        runtime = DSMRuntime(
            RuntimeConfig(world_size=3, seed=seed, latency="uniform",
                          detector=detector_config)
        )
        runtime.declare_scalar("x", owner=1, initial=0)

        def writer(api):
            yield from api.put("x", 100)

        def bumper(api):
            yield from api.fetch_add("x", 1)

        runtime.set_program(0, writer)
        runtime.set_program(2, bumper)
        runtime.set_program(1, idle)
        return runtime

    return factory


def make_cas_vs_put(detector_config):
    """Rank 0 overwrites the flag rank 2 is trying to CAS: the swap's success
    depends on timing, so the CAS observes diverging old values."""

    def factory(seed):
        runtime = DSMRuntime(
            RuntimeConfig(world_size=3, seed=seed, latency="uniform",
                          detector=detector_config)
        )
        runtime.declare_scalar("flag", owner=1, initial=0)

        def writer(api):
            yield from api.put("flag", 7)

        def swapper(api):
            old = yield from api.compare_and_swap("flag", 0, 1)
            api.private.write("old", old)

        runtime.set_program(0, writer)
        runtime.set_program(2, swapper)
        runtime.set_program(1, idle)
        return runtime

    return factory


def make_read_vs_fetch_add(detector_config):
    """Rank 0 reads the counter rank 2 increments: the read observes 0 or 1."""

    def factory(seed):
        runtime = DSMRuntime(
            RuntimeConfig(world_size=3, seed=seed, latency="uniform",
                          detector=detector_config)
        )
        runtime.declare_scalar("c", owner=1, initial=0)

        def reader(api):
            value = yield from api.get("c")
            api.private.write("seen", value)

        def bumper(api):
            yield from api.fetch_add("c", 1)

        runtime.set_program(0, reader)
        runtime.set_program(2, bumper)
        runtime.set_program(1, idle)
        return runtime

    return factory


SCENARIOS = [make_put_vs_fetch_add, make_cas_vs_put, make_read_vs_fetch_add]
CONFIGS = [
    DetectorConfig(),
    DetectorConfig(treat_rmw_pairs_as_ordered=True),
]


class TestNoFalseNegativesOnAtomicRaces:
    @pytest.mark.parametrize("make_scenario", SCENARIOS)
    @pytest.mark.parametrize("config", CONFIGS, ids=["default", "rmw-pairs-ordered"])
    def test_oracle_racy_addresses_are_always_flagged(self, make_scenario, config):
        factory = make_scenario(config)
        seeds = (0, 1, 2, 3, 4, 5)
        oracle = SeedVaryingOracle(factory, seeds=seeds)
        truth = oracle.evaluate()
        assert truth.racy, "the injected scenario must be observably racy"
        for seed in seeds:
            runtime = factory(seed)
            runtime.run()
            flagged = _race_flagged_addresses(runtime)
            missed = truth.racy_addresses - flagged
            assert not missed, (
                f"false negatives at seed {seed}: oracle-racy {missed} "
                f"not flagged (flagged: {flagged})"
            )


class TestVerbsRunsStayCoherent:
    def test_sequential_consistency_holds_under_posted_traffic(self):
        for seed in range(3):
            runtime = DSMRuntime(
                RuntimeConfig(world_size=4, seed=seed, latency="uniform")
            )
            runtime.declare_array("cells", 8, owner=0, initial=0)
            runtime.declare_scalar("total", owner=0, initial=0)

            def program(api):
                for index in range(4):
                    api.iput("cells", api.rank * 10 + index, index=(api.rank + index) % 8)
                yield from api.fetch_add("total", api.rank)
                yield from api.wait_all()
                yield from api.barrier()

            runtime.set_spmd_program(program)
            result = runtime.run()
            assert runtime.consistency_check() == []
            assert result.shared_value("total") == sum(range(4))

    def test_trace_replay_reproduces_verbs_race_report(self):
        from repro.trace.replay import TraceReplayer

        runtime = DSMRuntime(RuntimeConfig(world_size=3, latency="uniform"))
        runtime.declare_scalar("x", owner=1, initial=0)

        def mixed(api):
            if api.rank == 0:
                api.iput("x", 5)
                yield from api.wait_all()
            elif api.rank == 2:
                yield from api.fetch_add("x", 1)
            else:
                yield from api.compute(0.0)

        runtime.set_spmd_program(mixed)
        result = runtime.run()
        replay = TraceReplayer(3).replay(
            runtime.recorder.accesses(), syncs=runtime.recorder.syncs()
        )
        assert replay.race_count == result.race_count
        assert {r.address for r in replay.races} == {
            r.address for r in result.race_records()
        }
