"""Acceptance of the unified clock-transport layer.

The headline contract: ``clock_transport="piggyback"`` moves strictly fewer
messages than ``"roundtrip"`` at byte-identical detector verdicts — per run
on the stencil and RPC-echo workload families, and across an explored
schedule campaign of the RMW corpus (``python -m repro.explore
--expect-consistent`` must pass in both modes, which is also what the CI
smoke job runs).
"""

import pytest

from repro.explore.campaign import CampaignConfig, main as campaign_main, run_campaign
from repro.net.message import MessageKind
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads import (
    RPCEchoWorkload,
    SendRecvStencilWorkload,
    VerbsStencilWorkload,
)

MODES = ("roundtrip", "piggyback")


def _verdict(run):
    return sorted(
        (r.address.rank, r.address.offset, r.current_rank, r.current_kind.value, r.symbol)
        for r in run.race_records()
    )


def _pairs(workload_builder, seeds=(0, 1)):
    for seed in seeds:
        yield {
            mode: workload_builder(RuntimeConfig(clock_transport=mode)).run(seed)
            for mode in MODES
        }


WORKLOADS = {
    "stencil": lambda config: VerbsStencilWorkload(
        world_size=4, cells_per_rank=6, iterations=2, config=config
    ),
    "rpc-echo": lambda config: RPCEchoWorkload(num_clients=3, config=config),
    "rpc-echo-racy": lambda config: RPCEchoWorkload(
        num_clients=2, racy_buffer_reuse=True, config=config
    ),
    "send-stencil": lambda config: SendRecvStencilWorkload(
        world_size=3, cells_per_rank=6, plane_width=2, iterations=2, config=config
    ),
}


class TestPiggybackVsRoundtrip:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_fewer_messages_identical_verdicts(self, name):
        for runs in _pairs(WORKLOADS[name]):
            roundtrip, piggyback = runs["roundtrip"].run, runs["piggyback"].run
            assert _verdict(piggyback) == _verdict(roundtrip), (
                f"{name}: the transport changed the race report"
            )
            assert (
                piggyback.fabric_stats.total_messages
                < roundtrip.fabric_stats.total_messages
            ), f"{name}: piggybacking must move strictly fewer messages"
            # The whole CLOCK_FETCH/CLOCK_UPDATE category disappears...
            assert piggyback.fabric_stats.detection_messages == 0
            # ...because the clocks ride on the data messages instead.
            assert piggyback.clock_transport_stats["piggybacked_messages"] > 0
            assert piggyback.clock_transport_stats["round_trips"] == 0
            assert roundtrip.clock_transport_stats["piggybacked_messages"] == 0

    def test_data_messages_actually_carry_the_clock(self):
        runtime = DSMRuntime(
            RuntimeConfig(world_size=2, clock_transport="piggyback")
        )
        runtime.declare_scalar("x", owner=1, initial=0)

        def writer(api):
            yield from api.put("x", 1)

        def idle(api):
            yield from api.compute(0.0)

        runtime.set_program(0, writer)
        runtime.set_program(1, idle)
        runtime.run()
        channel = runtime.fabric.channels()[(0, 1)]
        assert channel.stats.messages > 0
        assert runtime.fabric.message_count(MessageKind.CLOCK_FETCH) == 0
        assert runtime.fabric.message_count(MessageKind.CLOCK_UPDATE) == 0

    def test_per_check_control_accounting_is_zero_under_piggyback(self):
        for mode, expected in (("roundtrip", True), ("piggyback", False)):
            result = WORKLOADS["stencil"](RuntimeConfig(clock_transport=mode)).run(0)
            assert (result.run.detection_control_messages > 0) is expected


class TestExploredScheduleCampaigns:
    @pytest.mark.parametrize("corpus,patterns", [
        ("default", ["fig5a-concurrent-puts", "write-after-read-unsync"]),
        ("rmw", None),
    ])
    def test_expect_consistent_passes_in_both_modes(self, corpus, patterns):
        """The CLI acceptance gate: ``--expect-consistent`` in both modes."""
        for mode in MODES:
            argv = [
                "--corpus", corpus,
                "--strategy", "systematic",
                "--budget", "4",
                "--quantum", "4.0",
                "--clock-transport", mode,
            ]
            if patterns:
                argv += ["--patterns", *patterns]
            argv.append("--expect-consistent")
            assert campaign_main(argv) == 0, (
                f"--expect-consistent failed under clock_transport={mode}"
            )

    def test_campaign_verdicts_identical_with_fewer_messages(self):
        reports = {
            mode: run_campaign(
                CampaignConfig(
                    strategy="systematic", budget=4, quantum=4.0,
                    clock_transport=mode,
                ),
                patterns=["fig5a-concurrent-puts", "unsynchronized-counter"],
            )
            for mode in MODES
        }
        roundtrip, piggyback = reports["roundtrip"], reports["piggyback"]
        assert (
            piggyback.matrix_clock_consistency()
            == roundtrip.matrix_clock_consistency()
        )
        for pb, rt in zip(piggyback.per_pattern, roundtrip.per_pattern):
            assert pb["flagged_in_any"] == rt["flagged_in_any"]
            assert sum(o["total_messages"] for o in pb["outcomes"]) < sum(
                o["total_messages"] for o in rt["outcomes"]
            )
