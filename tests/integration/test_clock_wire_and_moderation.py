"""Acceptance of the clock wire-format layer and completion coalescing.

The two new knobs must be invisible to the detector:

* ``clock_wire`` (``full``/``delta``/``truncated``) only changes how many
  bytes a clock rider costs — every frame decodes to the exact clock, so a
  compressed run's race report is **byte-identical** to the full-format run
  (clocks included), its messages the same, only its wire bytes smaller;
* ``cq_moderation`` only coalesces completion delivery (one CQE per drain
  burst) — every completion still retires with its batched clock, so the
  verdict set cannot change; only completion-event counts and clock-byte
  charges shrink.

And the trace stays the ground truth: offline replay of a
piggyback+delta(+moderation) run reproduces the online race report
byte-identically, because recorded clocks are knob-independent.
"""

import pytest

from repro.explore.campaign import CampaignConfig, main as campaign_main, run_campaign
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.trace.replay import TraceReplayer
from repro.workloads import RPCEchoWorkload, VerbsStencilWorkload

WIRE_FORMATS = ("full", "delta", "truncated")
TRANSPORTS = ("roundtrip", "piggyback")


def _racy_burst_runtime(**knobs):
    """Three ranks; 0 posts a burst then reads unwaited (a real async race),
    while 2 also writes the cell — plenty of verdicts to compare."""
    runtime = DSMRuntime(
        RuntimeConfig(world_size=3, **knobs)
    )
    runtime.declare_array("cells", 4, owner=1, initial=0)

    def poster(api):
        for index in range(4):
            api.iput("cells", 10 + index, index=index)
        value = yield from api.get("cells", index=0)  # unwaited: races
        api.private.write("seen", value)
        yield from api.wait_all()

    def other_writer(api):
        yield from api.put("cells", 99, index=0)
        yield from api.compute(1.0)

    def idle(api):
        yield from api.compute(0.0)

    runtime.set_program(0, poster)
    runtime.set_program(1, idle)
    runtime.set_program(2, other_writer)
    return runtime


def _full_verdict(run):
    """The race report down to the clocks — byte-level comparison."""
    return sorted(
        (
            r.address.rank, r.address.offset, r.current_rank,
            r.current_kind.value, tuple(r.current_clock),
            r.previous_rank, tuple(r.previous_clock), r.symbol, r.operation,
        )
        for r in run.race_records()
    )


class TestWireFormatIsByteInvisible:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_byte_identical_verdicts_same_messages_fewer_bytes(self, transport):
        runs = {
            wire: _racy_burst_runtime(
                clock_transport=transport, clock_wire=wire
            ).run()
            for wire in WIRE_FORMATS
        }
        baseline = runs["full"]
        assert baseline.race_count > 0, "the scenario must actually race"
        for wire in ("delta", "truncated"):
            compressed = runs[wire]
            assert _full_verdict(compressed) == _full_verdict(baseline), (
                f"{transport}/{wire}: the wire format changed the race report"
            )
            assert compressed.final_shared_values == baseline.final_shared_values
            assert (
                compressed.fabric_stats.total_messages
                == baseline.fabric_stats.total_messages
            ), f"{transport}/{wire}: the wire format changed the message count"
            assert (
                compressed.fabric_stats.total_bytes
                < baseline.fabric_stats.total_bytes
            ), f"{transport}/{wire}: compression must shrink wire bytes"
            assert compressed.clock_transport_stats["wire_bytes_saved"] > 0
            assert compressed.clock_transport_stats["wire_frames_sparse"] > 0

    def test_piggyback_riders_are_sized_by_the_format(self):
        full = _racy_burst_runtime(
            clock_transport="piggyback", clock_wire="full"
        ).run()
        delta = _racy_burst_runtime(
            clock_transport="piggyback", clock_wire="delta"
        ).run()
        assert (
            delta.clock_transport_stats["piggybacked_messages"]
            == full.clock_transport_stats["piggybacked_messages"]
        )
        assert (
            delta.clock_transport_stats["piggybacked_bytes"]
            < full.clock_transport_stats["piggybacked_bytes"]
        )

    def test_roundtrip_clock_update_payload_shrinks_too(self):
        full = _racy_burst_runtime(
            clock_transport="roundtrip", clock_wire="full"
        ).run()
        delta = _racy_burst_runtime(
            clock_transport="roundtrip", clock_wire="delta"
        ).run()
        assert (
            delta.fabric_stats.detection_messages
            == full.fabric_stats.detection_messages
        )
        assert delta.fabric_stats.detection_bytes < full.fabric_stats.detection_bytes
        assert delta.detection_clock_bytes < full.detection_clock_bytes

    def test_resync_boundaries_in_a_live_run_change_nothing(self):
        baseline = _racy_burst_runtime(
            clock_transport="piggyback", clock_wire="delta"
        ).run()
        frequent = _racy_burst_runtime(
            clock_transport="piggyback", clock_wire="delta", clock_wire_resync=2
        ).run()
        assert _full_verdict(frequent) == _full_verdict(baseline)
        assert (
            frequent.clock_transport_stats["wire_frames_full"]
            > baseline.clock_transport_stats["wire_frames_full"]
        )

    def test_conflicting_wire_format_configs_are_rejected(self):
        from repro.net.nic import NICConfig

        with pytest.raises(ValueError, match="conflicting clock wire"):
            DSMRuntime(
                RuntimeConfig(
                    world_size=2,
                    clock_wire="delta",
                    nic=NICConfig(clock_wire="truncated"),
                )
            )


class TestCqModerationIsVerdictInvisible:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_same_verdicts_fewer_completion_events(self, transport):
        off = _racy_burst_runtime(
            clock_transport=transport, cq_moderation=False
        ).run()
        on = _racy_burst_runtime(
            clock_transport=transport, cq_moderation=True
        ).run()
        assert off.race_count > 0
        # Moderation may shift CQ delivery times, so compare the verdict set
        # (who raced where), not the clock bytes.
        verdict = lambda run: sorted(
            (r.address.rank, r.address.offset, r.current_rank,
             r.current_kind.value, r.symbol)
            for r in run.race_records()
        )
        assert verdict(on) == verdict(off)
        assert off.final_shared_values == on.final_shared_values
        stats_on, stats_off = on.clock_transport_stats, off.clock_transport_stats
        assert stats_on["completion_events"] < stats_off["completion_events"]
        assert stats_on["completions_coalesced"] > 0
        assert stats_off["completions_coalesced"] == 0
        assert (
            stats_on["completion_clock_bytes"] < stats_off["completion_clock_bytes"]
        )

    def test_every_completion_still_retires_under_moderation(self):
        runtime = _racy_burst_runtime(cq_moderation=True)
        result = runtime.run()
        assert result.cq_moderation is True
        for context in runtime.verbs_contexts:
            assert context.outstanding_count == 0
        # One CQE per drain burst on the posting rank's send CQ.
        send_cq = runtime.verbs_contexts[0].cq
        assert send_cq.total_pushed > send_cq.events

    def test_bounded_cq_never_overflows_under_moderation(self):
        """A capacity-bounded CQ that survives uncoalesced delivery must
        survive coalesced delivery too: the drain splits the burst the
        moment the CQ would fill (real moderation hardware fires the event
        when the CQ fills), so moderation can never turn a passing run
        into a CompletionQueueOverflow crash."""

        def run(cq_moderation):
            runtime = DSMRuntime(
                RuntimeConfig(
                    world_size=2, verbs_cq_capacity=4,
                    cq_moderation=cq_moderation,
                )
            )
            runtime.declare_array("cells", 8, owner=1, initial=0)

            def poster(api):
                for index in range(8):
                    request = api.iput("cells", index, index=index)
                    yield from api.wait(request)

            def idle(api):
                yield from api.compute(0.0)

            runtime.set_program(0, poster)
            runtime.set_program(1, idle)
            return runtime.run()

        off, on = run(False), run(True)
        assert off.final_shared_values == on.final_shared_values
        assert off.race_count == on.race_count == 0

    def test_moderated_workloads_run_end_to_end(self):
        for workload in (
            VerbsStencilWorkload(
                world_size=4, cells_per_rank=6, iterations=2,
                config=RuntimeConfig(
                    clock_transport="piggyback", clock_wire="delta",
                    cq_moderation=True,
                ),
            ),
            RPCEchoWorkload(
                num_clients=3,
                config=RuntimeConfig(
                    clock_transport="piggyback", clock_wire="truncated",
                    cq_moderation=True,
                ),
            ),
        ):
            outcome = workload.run(0)
            assert outcome.run.race_count == 0
            # These workloads fan posts out across peers, so bursts are
            # often single completions; coalescing may or may not trigger,
            # but every completion must still be delivered and retired.
            stats = outcome.run.clock_transport_stats
            assert stats["completion_events"] > 0
            assert stats["completion_events"] <= (
                stats["completion_events"] + stats["completions_coalesced"]
            )


class TestTraceStaysTheGroundTruth:
    def test_replay_of_piggyback_delta_moderated_run_is_byte_identical(self):
        runtime = _racy_burst_runtime(
            clock_transport="piggyback", clock_wire="delta", cq_moderation=True
        )
        result = runtime.run()
        assert result.race_count > 0
        replay = TraceReplayer(3).replay(
            runtime.recorder.accesses(), syncs=runtime.recorder.syncs()
        )
        online = _full_verdict(result)
        offline = sorted(
            (
                r.address.rank, r.address.offset, r.current_rank,
                r.current_kind.value, tuple(r.current_clock),
                r.previous_rank, tuple(r.previous_clock), r.symbol, r.operation,
            )
            for r in replay.races
        )
        assert offline == online, "offline replay diverged from the online report"

    def test_trace_header_records_the_knobs(self):
        from repro.trace.serialization import trace_to_json
        import json

        runtime = _racy_burst_runtime(
            clock_transport="piggyback", clock_wire="delta", cq_moderation=True
        )
        runtime.run()
        info = runtime.recorder.run_info()
        assert info["clock_transport"] == "piggyback"
        assert info["clock_wire"] == "delta"
        assert info["cq_moderation"] is True
        text = trace_to_json(
            3,
            runtime.recorder.accesses(),
            syncs=runtime.recorder.syncs(),
            run_info=info,
        )
        header = json.loads(text)["run_info"]
        assert header["clock_wire"] == "delta"


class TestCampaignKnobMatrix:
    def test_expect_consistent_holds_for_every_knob_combination(self):
        """The CI acceptance gate, in miniature: ``--expect-consistent``
        passes for every clock_transport × clock_wire × cq_moderation cell."""
        for transport in TRANSPORTS:
            for wire in WIRE_FORMATS:
                for moderation in ("off", "on"):
                    argv = [
                        "--patterns", "fig5a-concurrent-puts",
                        "--strategy", "systematic",
                        "--budget", "3",
                        "--quantum", "4.0",
                        "--clock-transport", transport,
                        "--clock-wire", wire,
                        "--cq-moderation", moderation,
                        "--expect-consistent",
                    ]
                    assert campaign_main(argv) == 0, (
                        f"--expect-consistent failed for "
                        f"{transport}/{wire}/moderation={moderation}"
                    )

    def test_campaign_reports_agree_across_wire_formats(self):
        reports = {
            wire: run_campaign(
                CampaignConfig(
                    strategy="systematic", budget=3, quantum=4.0,
                    clock_transport="piggyback", clock_wire=wire,
                ),
                patterns=["write-after-read-unsync"],
            )
            for wire in WIRE_FORMATS
        }
        baseline = reports["full"]
        for wire in ("delta", "truncated"):
            assert (
                reports[wire].matrix_clock_consistency()
                == baseline.matrix_clock_consistency()
            )
            for fresh, base in zip(
                reports[wire].per_pattern, baseline.per_pattern
            ):
                assert fresh["flagged_in_any"] == base["flagged_in_any"]
