"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that legacy editable installs (``pip install -e . --no-use-pep517``) work on
offline machines whose setuptools lacks the ``wheel`` package required for
PEP 660 editable wheels.
"""

from setuptools import setup

setup()
